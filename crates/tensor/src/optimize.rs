//! Graph optimization passes.
//!
//! These are the "compiler optimizations" of the paper's §4.1/§4.2: the ML
//! runtime rewrites its own dataflow before execution. Three passes are
//! implemented, mirroring what the paper leans on in ONNX Runtime:
//!
//! * **constant folding** — any node whose inputs are all constants is
//!   evaluated at optimization time. Combined with
//!   [`bind_input_constant`], this is how a predicate constant (e.g.
//!   `pregnant = 1`) is propagated *into* a translated model;
//! * **dead-code elimination** — nodes and initializers not reachable from
//!   the outputs are dropped (model-projection pushdown leaves these
//!   behind);
//! * **MatMul+Add → Gemm fusion** — the classic fusion that turns a
//!   translated linear layer into one kernel.

use crate::graph::{Graph, Node};
use crate::ops::Op;
use crate::tensor::Tensor;
use crate::Result;
use std::collections::{HashMap, HashSet};

/// Report of what the optimizer did (surfaced in EXPLAIN output).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    pub folded_nodes: usize,
    pub eliminated_nodes: usize,
    pub eliminated_initializers: usize,
    pub fused_gemms: usize,
}

impl OptimizeReport {
    fn merge(&mut self, other: OptimizeReport) {
        self.folded_nodes += other.folded_nodes;
        self.eliminated_nodes += other.eliminated_nodes;
        self.eliminated_initializers += other.eliminated_initializers;
        self.fused_gemms += other.fused_gemms;
    }
}

/// Run all passes to a fixpoint (bounded) and return the report.
pub fn optimize(graph: &mut Graph) -> Result<OptimizeReport> {
    let mut report = OptimizeReport::default();
    // Each pass can expose work for the others; a handful of rounds always
    // converges for our graph sizes. Bound defensively anyway.
    for _ in 0..8 {
        let mut round = OptimizeReport::default();
        round.merge(fuse_gemm(graph)?);
        round.merge(fold_constants(graph)?);
        round.merge(eliminate_dead_code(graph)?);
        let progress = round != OptimizeReport::default();
        report.merge(round);
        if !progress {
            break;
        }
    }
    Ok(report)
}

/// Replace a graph input with a constant initializer.
///
/// This is the entry point for the paper's predicate-driven constant
/// propagation: when the relational side proves an input column constant
/// (e.g. `WHERE pregnant = 1`), the optimizer binds that column to the
/// constant and lets [`fold_constants`] simplify everything downstream.
pub fn bind_input_constant(graph: &mut Graph, input: &str, value: Tensor) -> Result<()> {
    let pos = graph
        .inputs
        .iter()
        .position(|n| n == input)
        .ok_or_else(|| crate::TensorError::NameNotFound(input.to_string()))?;
    graph.inputs.remove(pos);
    graph.initializers.insert(input.to_string(), value);
    Ok(())
}

/// Evaluate every node whose inputs are all initializers.
pub fn fold_constants(graph: &mut Graph) -> Result<OptimizeReport> {
    let mut report = OptimizeReport::default();
    let order = graph.topo_order()?;
    let mut keep: Vec<Node> = Vec::with_capacity(graph.nodes.len());
    // Process in topological order so folded outputs feed later folds.
    let nodes_in_order: Vec<Node> = order.iter().map(|&i| graph.nodes[i].clone()).collect();
    for node in nodes_in_order {
        let all_const = node
            .inputs
            .iter()
            .all(|n| graph.initializers.contains_key(n));
        if all_const {
            let args: Vec<&Tensor> = node.inputs.iter().map(|n| &graph.initializers[n]).collect();
            let value = node.op.eval(&args)?;
            graph.initializers.insert(node.output.clone(), value);
            report.folded_nodes += 1;
        } else {
            keep.push(node);
        }
    }
    graph.nodes = keep;
    Ok(report)
}

/// Drop nodes and initializers not needed by the graph outputs.
pub fn eliminate_dead_code(graph: &mut Graph) -> Result<OptimizeReport> {
    let mut live: HashSet<String> = graph.outputs.iter().cloned().collect();
    let producer: HashMap<String, usize> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.output.clone(), i))
        .collect();
    // Walk backwards from outputs.
    let mut stack: Vec<String> = graph.outputs.clone();
    while let Some(name) = stack.pop() {
        if let Some(&i) = producer.get(&name) {
            for input in &graph.nodes[i].inputs {
                if live.insert(input.clone()) {
                    stack.push(input.clone());
                }
            }
        }
    }
    let before_nodes = graph.nodes.len();
    graph.nodes.retain(|n| live.contains(&n.output));
    let before_inits = graph.initializers.len();
    graph.initializers.retain(|k, _| live.contains(k));
    Ok(OptimizeReport {
        eliminated_nodes: before_nodes - graph.nodes.len(),
        eliminated_initializers: before_inits - graph.initializers.len(),
        ..Default::default()
    })
}

/// Fuse `Add(MatMul(x, w), bias)` into `Gemm(x, w, bias)` when the MatMul
/// result has no other consumer.
pub fn fuse_gemm(graph: &mut Graph) -> Result<OptimizeReport> {
    let mut report = OptimizeReport::default();
    // Count consumers of each value.
    let mut uses: HashMap<String, usize> = HashMap::new();
    for node in &graph.nodes {
        for input in &node.inputs {
            *uses.entry(input.clone()).or_insert(0) += 1;
        }
    }
    for output in &graph.outputs {
        *uses.entry(output.clone()).or_insert(0) += 1;
    }
    let producer: HashMap<String, usize> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.output.clone(), i))
        .collect();

    let mut remove: HashSet<usize> = HashSet::new();
    let mut replacements: Vec<(usize, Node)> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.op != Op::Add {
            continue;
        }
        // Either operand order: Add(matmul, bias) or Add(bias, matmul).
        for (mm_side, bias_side) in [(0usize, 1usize), (1, 0)] {
            let mm_name = &node.inputs[mm_side];
            let bias_name = &node.inputs[bias_side];
            let Some(&mm_idx) = producer.get(mm_name) else {
                continue;
            };
            if graph.nodes[mm_idx].op != Op::MatMul
                || uses.get(mm_name).copied().unwrap_or(0) != 1
                || remove.contains(&mm_idx)
            {
                continue;
            }
            let mm = &graph.nodes[mm_idx];
            replacements.push((
                i,
                Node {
                    op: Op::Gemm {
                        alpha: 1.0,
                        beta: 1.0,
                    },
                    inputs: vec![
                        mm.inputs[0].clone(),
                        mm.inputs[1].clone(),
                        bias_name.clone(),
                    ],
                    output: node.output.clone(),
                },
            ));
            remove.insert(mm_idx);
            report.fused_gemms += 1;
            break;
        }
    }
    for (i, node) in replacements {
        graph.nodes[i] = node;
    }
    let removed: Vec<usize> = remove.into_iter().collect();
    let mut idx = 0usize;
    graph.nodes.retain(|_| {
        let keep = !removed.contains(&idx);
        idx += 1;
        keep
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use std::collections::HashMap as Map;

    /// y = (x · W + b) with a dangling dead branch.
    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let w = b.initializer("w", Tensor::matrix(2, 2, vec![1., 0., 0., 1.]).unwrap());
        let bias = b.initializer("b", Tensor::vector(vec![1.0, 2.0]));
        let dead_w = b.initializer("dead_w", Tensor::vector(vec![9.0]));
        let mm = b.node(Op::MatMul, &[&x, &w]);
        let y = b.node(Op::Add, &[&mm, &bias]);
        let _dead = b.node(Op::Neg, &[&dead_w]);
        b.output(y);
        b.build().unwrap()
    }

    fn run1(g: &Graph, x: Tensor) -> Tensor {
        let mut inputs = Map::new();
        inputs.insert("x".to_string(), x);
        g.run(&inputs).unwrap().0.remove(0)
    }

    #[test]
    fn gemm_fusion_preserves_semantics() {
        let mut g = sample();
        let x = Tensor::matrix(1, 2, vec![3.0, 4.0]).unwrap();
        let before = run1(&g, x.clone());
        let report = fuse_gemm(&mut g).unwrap();
        assert_eq!(report.fused_gemms, 1);
        assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Gemm { .. })));
        assert!(!g.nodes.iter().any(|n| n.op == Op::MatMul));
        assert_eq!(run1(&g, x), before);
    }

    #[test]
    fn dce_removes_dead_branch() {
        let mut g = sample();
        let report = eliminate_dead_code(&mut g).unwrap();
        assert_eq!(report.eliminated_nodes, 1);
        assert_eq!(report.eliminated_initializers, 1);
        assert!(!g.initializers.contains_key("dead_w"));
    }

    #[test]
    fn constant_folding_precomputes() {
        // Graph where everything is constant.
        let mut b = GraphBuilder::new();
        let a = b.initializer("a", Tensor::vector(vec![1.0, 2.0]));
        let c = b.initializer("c", Tensor::vector(vec![3.0, 4.0]));
        let s = b.node(Op::Add, &[&a, &c]);
        b.output(s.clone());
        let mut g = b.build().unwrap();
        let report = fold_constants(&mut g).unwrap();
        assert_eq!(report.folded_nodes, 1);
        assert!(g.nodes.is_empty());
        assert_eq!(g.initializers[&s].data(), &[4.0, 6.0]);
        // It still runs (outputs come straight from initializers).
        let (outs, _) = g.run(&Map::new()).unwrap();
        assert_eq!(outs[0].data(), &[4.0, 6.0]);
    }

    #[test]
    fn bind_constant_then_fold_simplifies() {
        let mut g = sample();
        // Bind x to a constant: the whole graph becomes constant.
        bind_input_constant(&mut g, "x", Tensor::matrix(1, 2, vec![5.0, 6.0]).unwrap()).unwrap();
        assert!(g.inputs.is_empty());
        let report = optimize(&mut g).unwrap();
        assert!(report.folded_nodes >= 1);
        assert!(g.nodes.is_empty());
        let (outs, flops) = g.run(&Map::new()).unwrap();
        assert_eq!(outs[0].data(), &[6.0, 8.0]);
        assert_eq!(flops, 0, "all compute happened at optimization time");
    }

    #[test]
    fn bind_constant_unknown_input_errors() {
        let mut g = sample();
        assert!(bind_input_constant(&mut g, "nope", Tensor::scalar(0.0)).is_err());
    }

    #[test]
    fn full_optimize_is_idempotent() {
        let mut g = sample();
        optimize(&mut g).unwrap();
        let snapshot = g.clone();
        let second = optimize(&mut g).unwrap();
        assert_eq!(second, OptimizeReport::default());
        assert_eq!(g, snapshot);
    }

    #[test]
    fn fusion_skipped_when_matmul_shared() {
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let w = b.initializer("w", Tensor::matrix(2, 2, vec![1., 0., 0., 1.]).unwrap());
        let bias = b.initializer("b", Tensor::vector(vec![1.0, 2.0]));
        let mm = b.node(Op::MatMul, &[&x, &w]);
        let y1 = b.node(Op::Add, &[&mm, &bias]);
        let y2 = b.node(Op::Relu, &[&mm]); // second consumer of mm
        b.output(y1);
        b.output(y2);
        let mut g = b.build().unwrap();
        let report = fuse_gemm(&mut g).unwrap();
        assert_eq!(report.fused_gemms, 0);
    }
}
