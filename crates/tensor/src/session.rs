//! Inference sessions, batched execution, and the session cache.

use crate::device::{Device, RunStats};
use crate::error::TensorError;
use crate::graph::Graph;
use crate::optimize::{self, OptimizeReport};
use crate::tensor::Tensor;
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Options controlling session construction and execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionOptions {
    /// Run graph optimization passes at session creation.
    pub optimize: bool,
    /// Execution device.
    pub device: Device,
    /// Rows per execution batch for [`InferenceSession::run_batched`].
    /// `0` means "score the whole input in one call". The paper reports
    /// ~an order of magnitude win from batching over per-tuple scoring
    /// (§5, observation v) — reproduce it by setting this to 1.
    pub batch_size: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            optimize: true,
            device: Device::default(),
            batch_size: 0,
        }
    }
}

/// An optimized, executable model: the analogue of an ONNX Runtime
/// inference session.
#[derive(Debug)]
pub struct InferenceSession {
    graph: Graph,
    options: SessionOptions,
    report: OptimizeReport,
}

impl InferenceSession {
    /// Validate, optimize (unless disabled) and wrap a graph.
    pub fn new(mut graph: Graph, options: SessionOptions) -> Result<Self> {
        graph.validate()?;
        let report = if options.optimize {
            optimize::optimize(&mut graph)?
        } else {
            OptimizeReport::default()
        };
        Ok(InferenceSession {
            graph,
            options,
            report,
        })
    }

    /// The (optimized) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// What the optimizer did at creation.
    pub fn optimize_report(&self) -> &OptimizeReport {
        &self.report
    }

    /// Session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Execute once with named inputs.
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<(Vec<Tensor>, RunStats)> {
        let transferred: u64 = inputs
            .values()
            .map(|t| (t.numel() * std::mem::size_of::<f32>()) as u64)
            .sum();
        let start = Instant::now();
        let (outputs, flops) = self.graph.run(inputs)?;
        let wall = start.elapsed();
        let out_bytes: u64 = outputs
            .iter()
            .map(|t| (t.numel() * std::mem::size_of::<f32>()) as u64)
            .sum();
        let transferred_bytes = transferred + out_bytes;
        let stats = RunStats {
            wall,
            simulated: self.options.device.simulate(wall, flops, transferred_bytes),
            flops,
            transferred_bytes,
        };
        Ok((outputs, stats))
    }

    /// Score a single `[rows, features]` matrix bound to input
    /// `input_name`, splitting rows into batches per
    /// [`SessionOptions::batch_size`] and running batches in parallel
    /// across the device's thread budget.
    ///
    /// Outputs are concatenated back in row order. Every graph output must
    /// have one row (or element, for rank-1 outputs) per input row.
    pub fn run_batched(
        &self,
        input_name: &str,
        matrix: &Tensor,
    ) -> Result<(Vec<Tensor>, RunStats)> {
        if matrix.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                expected: "rank-2 input".into(),
                actual: format!("rank {}", matrix.rank()),
            });
        }
        let rows = matrix.rows();
        let batch = if self.options.batch_size == 0 {
            rows.max(1)
        } else {
            self.options.batch_size
        };
        if rows <= batch {
            let mut inputs = HashMap::with_capacity(1);
            inputs.insert(input_name.to_string(), matrix.clone());
            return self.run(&inputs);
        }

        // Build row ranges.
        let mut ranges = Vec::with_capacity(rows.div_ceil(batch));
        let mut start = 0;
        while start < rows {
            let end = (start + batch).min(rows);
            ranges.push((start, end));
            start = end;
        }

        let threads = self.options.device.threads().min(ranges.len()).max(1);
        let cols = matrix.cols();
        let slice_rows = |lo: usize, hi: usize| -> Result<Tensor> {
            Tensor::matrix(hi - lo, cols, matrix.data()[lo * cols..hi * cols].to_vec())
        };

        let mut results: Vec<Option<(Vec<Tensor>, RunStats)>> = Vec::new();
        results.resize_with(ranges.len(), || None);

        if threads == 1 {
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                let mut inputs = HashMap::with_capacity(1);
                inputs.insert(input_name.to_string(), slice_rows(lo, hi)?);
                results[i] = Some(self.run(&inputs)?);
            }
        } else {
            // Morsel-parallel execution: chunks of batches per worker. This
            // reproduces SQL Server's automatic parallelization of
            // scan+PREDICT (Fig. 3, observation iii).
            let errors = parking_lot::Mutex::new(Vec::<TensorError>::new());
            let chunk = ranges.len().div_ceil(threads);
            crossbeam::thread::scope(|scope| {
                for (slot, range_chunk) in results.chunks_mut(chunk).zip(ranges.chunks(chunk)) {
                    let errors = &errors;
                    let slice_rows = &slice_rows;
                    scope.spawn(move |_| {
                        for (out, &(lo, hi)) in slot.iter_mut().zip(range_chunk) {
                            let attempt = (|| {
                                let mut inputs = HashMap::with_capacity(1);
                                inputs.insert(input_name.to_string(), slice_rows(lo, hi)?);
                                self.run(&inputs)
                            })();
                            match attempt {
                                Ok(v) => *out = Some(v),
                                Err(e) => errors.lock().push(e),
                            }
                        }
                    });
                }
            })
            .map_err(|_| TensorError::Internal("worker panicked".into()))?;
            if let Some(e) = errors.into_inner().into_iter().next() {
                return Err(e);
            }
        }

        // Stitch outputs back together in row order.
        let parts: Vec<(Vec<Tensor>, RunStats)> = results
            .into_iter()
            .map(|r| r.ok_or_else(|| TensorError::Internal("missing batch result".into())))
            .collect::<Result<_>>()?;
        let n_outputs = parts[0].0.len();
        let mut stats = RunStats::default();
        let mut wall_max = std::time::Duration::ZERO;
        for (_, s) in &parts {
            stats.flops += s.flops;
            stats.transferred_bytes += s.transferred_bytes;
            stats.simulated += s.simulated;
            wall_max = wall_max.max(s.wall);
            stats.wall += s.wall;
        }
        if threads > 1 {
            // Parallel batches overlap: report aggregate CPU time scaled by
            // the actual overlap rather than the sum.
            stats.wall =
                std::time::Duration::from_secs_f64(stats.wall.as_secs_f64() / threads as f64)
                    .max(wall_max);
            stats.simulated = stats.wall;
        }
        let mut outputs = Vec::with_capacity(n_outputs);
        for o in 0..n_outputs {
            let pieces: Vec<Tensor> = parts
                .iter()
                .map(|(outs, _)| {
                    let t = &outs[o];
                    if t.rank() == 1 {
                        // Normalize vectors to [n,1] so vstack applies.
                        t.clone().reshape(vec![t.numel(), 1])
                    } else {
                        Ok(t.clone())
                    }
                })
                .collect::<Result<_>>()?;
            let stacked = Tensor::vstack(&pieces)?;
            // Restore rank-1 shape if the original output was a vector.
            let original_rank1 = parts[0].0[o].rank() == 1;
            outputs.push(if original_rank1 {
                let n = stacked.numel();
                stacked.reshape(vec![n])?
            } else {
                stacked
            });
        }
        Ok((outputs, stats))
    }
}

/// Cache of live inference sessions keyed by model identity.
///
/// SQL Server keeps models and inference sessions cached across queries;
/// the paper credits this for Raven beating standalone ONNX Runtime on
/// small datasets (Fig. 3, observation ii: 3 ms vs 20 ms at 100 tuples,
/// where ORT must reload the model from disk). `SessionCache::get_or_create`
/// is that mechanism: the first query pays graph deserialization +
/// optimization; later queries get the `Arc`'d session for free.
#[derive(Debug, Default)]
pub struct SessionCache {
    sessions: RwLock<HashMap<String, Arc<InferenceSession>>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl SessionCache {
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// Fetch the session for `key`, building it with `make` on a miss.
    pub fn get_or_create(
        &self,
        key: &str,
        make: impl FnOnce() -> Result<(Graph, SessionOptions)>,
    ) -> Result<Arc<InferenceSession>> {
        if let Some(hit) = self.sessions.read().get(key) {
            *self.hits.write() += 1;
            return Ok(hit.clone());
        }
        *self.misses.write() += 1;
        let (graph, options) = make()?;
        let session = Arc::new(InferenceSession::new(graph, options)?);
        self.sessions
            .write()
            .insert(key.to_string(), session.clone());
        Ok(session)
    }

    /// Drop a cached session (e.g. the model was updated transactionally).
    pub fn invalidate(&self, key: &str) {
        self.sessions.write().remove(key);
    }

    /// Drop every cached session whose key starts with `prefix` (used to
    /// invalidate all device/variant sessions of one model).
    pub fn invalidate_prefix(&self, prefix: &str) {
        self.sessions.write().retain(|k, _| !k.starts_with(prefix));
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.sessions.write().clear();
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.read(), *self.misses.read())
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True if no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ops::Op;

    /// y = relu(x·W + b): one hidden value per row.
    fn mlp_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let w = b.initializer(
            "w",
            Tensor::matrix(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap(),
        );
        let bias = b.initializer("b", Tensor::vector(vec![0.0, -1.0]));
        let mm = b.node(Op::MatMul, &[&x, &w]);
        let z = b.node(Op::Add, &[&mm, &bias]);
        let y = b.node(Op::Relu, &[&z]);
        b.output(y);
        b.build().unwrap()
    }

    fn x(rows: usize) -> Tensor {
        let data: Vec<f32> = (0..rows * 3).map(|i| (i % 7) as f32).collect();
        Tensor::matrix(rows, 3, data).unwrap()
    }

    #[test]
    fn session_optimizes_on_creation() {
        let s = InferenceSession::new(mlp_graph(), SessionOptions::default()).unwrap();
        assert_eq!(s.optimize_report().fused_gemms, 1);
        assert!(s
            .graph()
            .nodes
            .iter()
            .any(|n| matches!(n.op, Op::Gemm { .. })));
    }

    #[test]
    fn optimization_can_be_disabled() {
        let s = InferenceSession::new(
            mlp_graph(),
            SessionOptions {
                optimize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.optimize_report().fused_gemms, 0);
    }

    #[test]
    fn run_produces_stats() {
        let s = InferenceSession::new(mlp_graph(), SessionOptions::default()).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), x(4));
        let (outs, stats) = s.run(&inputs).unwrap();
        assert_eq!(outs[0].shape(), &[4, 2]);
        assert!(stats.flops > 0);
        assert!(stats.transferred_bytes > 0);
    }

    #[test]
    fn batched_equals_single_shot() {
        let whole = InferenceSession::new(mlp_graph(), SessionOptions::default()).unwrap();
        let batched = InferenceSession::new(
            mlp_graph(),
            SessionOptions {
                batch_size: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let input = x(10);
        let (a, _) = whole.run_batched("x", &input).unwrap();
        let (b, _) = batched.run_batched("x", &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_batched_equals_serial() {
        let serial = InferenceSession::new(
            mlp_graph(),
            SessionOptions {
                batch_size: 8,
                device: Device::Cpu { threads: 1 },
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = InferenceSession::new(
            mlp_graph(),
            SessionOptions {
                batch_size: 8,
                device: Device::Cpu { threads: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        let input = x(100);
        let (a, _) = serial.run_batched("x", &input).unwrap();
        let (b, _) = parallel.run_batched("x", &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gpu_results_identical_to_cpu() {
        let cpu = InferenceSession::new(mlp_graph(), SessionOptions::default()).unwrap();
        let gpu = InferenceSession::new(
            mlp_graph(),
            SessionOptions {
                device: Device::simulated_gpu(),
                ..Default::default()
            },
        )
        .unwrap();
        let input = x(16);
        let (a, _) = cpu.run_batched("x", &input).unwrap();
        let (b, stats) = gpu.run_batched("x", &input).unwrap();
        assert_eq!(a, b, "simulated GPU must be bit-identical");
        // Simulated time includes the launch-latency floor.
        assert!(stats.simulated >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn batched_rejects_vector_input() {
        let s = InferenceSession::new(mlp_graph(), SessionOptions::default()).unwrap();
        assert!(s
            .run_batched("x", &Tensor::vector(vec![1.0, 2.0, 3.0]))
            .is_err());
    }

    #[test]
    fn cache_hits_and_invalidation() {
        let cache = SessionCache::new();
        let make = || Ok((mlp_graph(), SessionOptions::default()));
        let a = cache.get_or_create("m1", make).unwrap();
        let b = cache
            .get_or_create("m1", || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);

        cache.invalidate("m1");
        assert!(cache.is_empty());
        let _ = cache
            .get_or_create("m1", || Ok((mlp_graph(), SessionOptions::default())))
            .unwrap();
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn cache_prefix_invalidation() {
        let cache = SessionCache::new();
        for key in ["m@cpu1@abc", "m@gpu@def", "other@cpu1@xyz"] {
            cache
                .get_or_create(key, || Ok((mlp_graph(), SessionOptions::default())))
                .unwrap();
        }
        assert_eq!(cache.len(), 3);
        cache.invalidate_prefix("m@");
        assert_eq!(cache.len(), 1);
        // The surviving entry is still a cache hit.
        cache
            .get_or_create("other@cpu1@xyz", || panic!("must not rebuild"))
            .unwrap();
    }

    #[test]
    fn cache_error_propagates_and_does_not_poison() {
        let cache = SessionCache::new();
        let err = cache.get_or_create("bad", || Err(TensorError::Internal("boom".into())));
        assert!(err.is_err());
        assert!(cache.is_empty());
        assert!(cache
            .get_or_create("bad", || Ok((mlp_graph(), SessionOptions::default())))
            .is_ok());
    }
}
