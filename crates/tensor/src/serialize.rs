//! Binary serialization of graphs: the on-disk/in-DB model format.
//!
//! The paper stores models *in the database* ("INSERT INTO model ...") and
//! standalone ONNX Runtime reloads the model file per query. Both sides
//! need a concrete byte format; this module provides a compact hand-rolled
//! one (the stand-in for `.onnx` protobufs):
//!
//! ```text
//! magic "RVN1" | inputs | outputs | initializers | nodes
//! ```
//!
//! Strings are length-prefixed UTF-8; integers are little-endian `u32`/`u64`;
//! tensor data is raw little-endian `f32`.

use crate::error::TensorError;
use crate::graph::{Graph, Node};
use crate::ops::Op;
use crate::tensor::Tensor;
use crate::Result;

const MAGIC: &[u8; 4] = b"RVN1";

/// Serialize a graph to bytes.
pub fn to_bytes(graph: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + graph.num_parameters() * 4);
    out.extend_from_slice(MAGIC);
    write_strings(&mut out, &graph.inputs);
    write_strings(&mut out, &graph.outputs);
    // Initializers, sorted for deterministic output.
    let mut names: Vec<&String> = graph.initializers.keys().collect();
    names.sort();
    write_u32(&mut out, names.len() as u32);
    for name in names {
        write_string(&mut out, name);
        write_tensor(&mut out, &graph.initializers[name]);
    }
    write_u32(&mut out, graph.nodes.len() as u32);
    for node in &graph.nodes {
        write_node(&mut out, node);
    }
    out
}

/// Deserialize a graph from bytes; validates the result.
pub fn from_bytes(bytes: &[u8]) -> Result<Graph> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(TensorError::Internal("bad model magic".into()));
    }
    let inputs = r.read_strings()?;
    let outputs = r.read_strings()?;
    let n_init = r.read_u32()? as usize;
    let mut initializers = std::collections::HashMap::with_capacity(n_init);
    for _ in 0..n_init {
        let name = r.read_string()?;
        let tensor = r.read_tensor()?;
        initializers.insert(name, tensor);
    }
    let n_nodes = r.read_u32()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(r.read_node()?);
    }
    let graph = Graph {
        nodes,
        inputs,
        outputs,
        initializers,
    };
    graph.validate()?;
    Ok(graph)
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_strings(out: &mut Vec<u8>, ss: &[String]) {
    write_u32(out, ss.len() as u32);
    for s in ss {
        write_string(out, s);
    }
}

fn write_tensor(out: &mut Vec<u8>, t: &Tensor) {
    write_u32(out, t.shape().len() as u32);
    for &d in t.shape() {
        write_u32(out, d as u32);
    }
    for &v in t.data() {
        write_f32(out, v);
    }
}

fn write_node(out: &mut Vec<u8>, node: &Node) {
    write_op(out, &node.op);
    write_strings(out, &node.inputs);
    write_string(out, &node.output);
}

fn write_op(out: &mut Vec<u8>, op: &Op) {
    // Tag byte, then op-specific payload.
    match op {
        Op::MatMul => out.push(0),
        Op::Gemm { alpha, beta } => {
            out.push(1);
            write_f32(out, *alpha);
            write_f32(out, *beta);
        }
        Op::Add => out.push(2),
        Op::Sub => out.push(3),
        Op::Mul => out.push(4),
        Op::Div => out.push(5),
        Op::Neg => out.push(6),
        Op::Relu => out.push(7),
        Op::Sigmoid => out.push(8),
        Op::Tanh => out.push(9),
        Op::Exp => out.push(10),
        Op::Less => out.push(11),
        Op::LessOrEqual => out.push(12),
        Op::Greater => out.push(13),
        Op::GreaterOrEqual => out.push(14),
        Op::Equal => out.push(15),
        Op::GatherCols { indices } => {
            out.push(16);
            write_u32(out, indices.len() as u32);
            for &i in indices {
                write_u32(out, i as u32);
            }
        }
        Op::Concat { axis } => {
            out.push(17);
            write_u32(out, *axis as u32);
        }
        Op::Reshape { shape } => {
            out.push(18);
            write_u32(out, shape.len() as u32);
            for &d in shape {
                write_u32(out, d as u32);
            }
        }
        Op::ReduceSum { axis } => {
            out.push(19);
            write_u32(out, *axis as u32);
        }
        Op::ReduceMean { axis } => {
            out.push(20);
            write_u32(out, *axis as u32);
        }
        Op::ArgMax => out.push(21),
        Op::Softmax => out.push(22),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(TensorError::Internal("truncated model bytes".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_string(&mut self) -> Result<String> {
        let len = self.read_u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| TensorError::Internal("invalid UTF-8 in model".into()))
    }

    fn read_strings(&mut self) -> Result<Vec<String>> {
        let n = self.read_u32()? as usize;
        (0..n).map(|_| self.read_string()).collect()
    }

    fn read_tensor(&mut self) -> Result<Tensor> {
        let rank = self.read_u32()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.read_u32()? as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(self.read_f32()?);
        }
        Tensor::new(shape, data)
    }

    fn read_node(&mut self) -> Result<Node> {
        let op = self.read_op()?;
        let inputs = self.read_strings()?;
        let output = self.read_string()?;
        Ok(Node { op, inputs, output })
    }

    fn read_op(&mut self) -> Result<Op> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            0 => Op::MatMul,
            1 => Op::Gemm {
                alpha: self.read_f32()?,
                beta: self.read_f32()?,
            },
            2 => Op::Add,
            3 => Op::Sub,
            4 => Op::Mul,
            5 => Op::Div,
            6 => Op::Neg,
            7 => Op::Relu,
            8 => Op::Sigmoid,
            9 => Op::Tanh,
            10 => Op::Exp,
            11 => Op::Less,
            12 => Op::LessOrEqual,
            13 => Op::Greater,
            14 => Op::GreaterOrEqual,
            15 => Op::Equal,
            16 => {
                let n = self.read_u32()? as usize;
                let indices = (0..n)
                    .map(|_| self.read_u32().map(|v| v as usize))
                    .collect::<Result<_>>()?;
                Op::GatherCols { indices }
            }
            17 => Op::Concat {
                axis: self.read_u32()? as usize,
            },
            18 => {
                let n = self.read_u32()? as usize;
                let shape = (0..n)
                    .map(|_| self.read_u32().map(|v| v as usize))
                    .collect::<Result<_>>()?;
                Op::Reshape { shape }
            }
            19 => Op::ReduceSum {
                axis: self.read_u32()? as usize,
            },
            20 => Op::ReduceMean {
                axis: self.read_u32()? as usize,
            },
            21 => Op::ArgMax,
            22 => Op::Softmax,
            other => {
                return Err(TensorError::Internal(format!(
                    "unknown op tag {other} in model bytes"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let w = b.initializer("w", Tensor::matrix(2, 2, vec![1., 2., 3., 4.]).unwrap());
        let bias = b.initializer("b", Tensor::vector(vec![0.5, -0.5]));
        let g = b.node(
            Op::Gemm {
                alpha: 1.0,
                beta: 1.0,
            },
            &[&x, &w, &bias],
        );
        let s = b.node(Op::Sigmoid, &[&g]);
        let picked = b.node(Op::GatherCols { indices: vec![1] }, &[&s]);
        b.output(picked);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g.inputs, g2.inputs);
        assert_eq!(g.outputs, g2.outputs);
        assert_eq!(g.nodes, g2.nodes);
        assert_eq!(g.initializers, g2.initializers);
    }

    #[test]
    fn roundtrip_execution_matches() {
        use std::collections::HashMap;
        let g = sample();
        let g2 = from_bytes(&to_bytes(&g)).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            "x".to_string(),
            Tensor::matrix(3, 2, vec![1., 0., 0., 1., 2., 2.]).unwrap(),
        );
        assert_eq!(g.run(&inputs).unwrap().0, g2.run(&inputs).unwrap().0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(from_bytes(b"XXXX....").is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&sample());
        for cut in [4usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn all_ops_roundtrip() {
        let ops = vec![
            Op::MatMul,
            Op::Gemm {
                alpha: 0.5,
                beta: 2.0,
            },
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Neg,
            Op::Relu,
            Op::Sigmoid,
            Op::Tanh,
            Op::Exp,
            Op::Less,
            Op::LessOrEqual,
            Op::Greater,
            Op::GreaterOrEqual,
            Op::Equal,
            Op::GatherCols {
                indices: vec![0, 3],
            },
            Op::Concat { axis: 1 },
            Op::Reshape { shape: vec![2, 2] },
            Op::ReduceSum { axis: 0 },
            Op::ReduceMean { axis: 1 },
            Op::ArgMax,
            Op::Softmax,
        ];
        for op in ops {
            let mut buf = Vec::new();
            write_op(&mut buf, &op);
            let mut r = Reader {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(r.read_op().unwrap(), op);
        }
    }
}
