//! Dense `f32` tensors.

use crate::error::TensorError;
use crate::Result;
use std::fmt;

/// A dense row-major `f32` tensor of rank 1 or 2.
///
/// Rank-2 tensors are `[rows, cols]` matrices (the batch dimension first,
/// matching how inference queries score a batch of tuples). Rank-1 tensors
/// are used for biases, thresholds and per-column constants, and broadcast
/// against the trailing dimension of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor, validating that `shape` covers `data`.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if shape.is_empty() || shape.len() > 2 {
            return Err(TensorError::ShapeMismatch {
                expected: "rank 1 or 2".into(),
                actual: format!("rank {}", shape.len()),
            });
        }
        if numel != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{numel} elements for shape {shape:?}"),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A rank-1 tensor from a vector.
    pub fn vector(data: Vec<f32>) -> Self {
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// A `[rows, cols]` matrix from row-major data.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        Tensor::new(vec![rows, cols], data)
    }

    /// A scalar wrapped as a rank-1 tensor of length 1.
    pub fn scalar(v: f32) -> Self {
        Tensor::vector(vec![v])
    }

    /// All-zero tensor.
    pub fn zeros(shape: Vec<usize>) -> Result<Self> {
        let numel = shape.iter().product();
        Tensor::new(shape, vec![0.0; numel])
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (1 or 2).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Rows for a matrix; length for a vector.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Columns for a matrix; 1 for a vector.
    pub fn cols(&self) -> usize {
        if self.rank() == 2 {
            self.shape[1]
        } else {
            1
        }
    }

    /// Element access for matrices.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// One row of a matrix as a slice.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.rank() != 2 || i >= self.shape[0] {
            return Err(TensorError::ShapeMismatch {
                expected: format!("row index < {}", self.shape.first().unwrap_or(&0)),
                actual: format!("{i}"),
            });
        }
        let w = self.shape[1];
        Ok(&self.data[i * w..(i + 1) * w])
    }

    /// Reshape without copying; element count must match.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() || shape.is_empty() || shape.len() > 2 {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements, rank<=2", self.data.len()),
                actual: format!("{shape:?}"),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Matrix transpose (copies).
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                expected: "rank 2".into(),
                actual: format!("rank {}", self.rank()),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::matrix(c, r, out)
    }

    /// Vertically stack matrices with equal column counts.
    pub fn vstack(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::Internal("vstack of zero tensors".into()))?;
        if first.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                expected: "rank 2".into(),
                actual: format!("rank {}", first.rank()),
            });
        }
        let cols = first.cols();
        let mut rows = 0;
        let mut data = Vec::new();
        for p in parts {
            if p.rank() != 2 || p.cols() != cols {
                return Err(TensorError::ShapeMismatch {
                    expected: format!("[*, {cols}]"),
                    actual: format!("{:?}", p.shape()),
                });
            }
            rows += p.rows();
            data.extend_from_slice(p.data());
        }
        Tensor::matrix(rows, cols, data)
    }

    /// Approximate equality (elementwise, absolute tolerance).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape() {
        assert!(Tensor::new(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::new(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::new(vec![], vec![]).is_err());
        assert!(Tensor::new(vec![1, 1, 1], vec![1.0]).is_err());
    }

    #[test]
    fn accessors() {
        let t = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(0).unwrap(), &[1., 2., 3.]);
        assert!(t.row(2).is_err());
        let v = Tensor::vector(vec![1., 2.]);
        assert_eq!(v.rank(), 1);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::vector(vec![1., 2., 3., 4.]);
        let m = t.clone().reshape(vec![2, 2]).unwrap();
        assert_eq!(m.shape(), &[2, 2]);
        assert!(t.reshape(vec![3, 2]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(2, 1), 6.0);
        assert_eq!(tt.transpose().unwrap(), t);
        assert!(Tensor::vector(vec![1.0]).transpose().is_err());
    }

    #[test]
    fn vstack() {
        let a = Tensor::matrix(1, 2, vec![1., 2.]).unwrap();
        let b = Tensor::matrix(2, 2, vec![3., 4., 5., 6.]).unwrap();
        let s = Tensor::vstack(&[a, b]).unwrap();
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.at(2, 1), 6.0);
        assert!(Tensor::vstack(&[]).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![1.0 + 1e-7, 2.0]);
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Tensor::vector(vec![1.0]), 1.0));
    }

    #[test]
    fn zeros_and_scalar() {
        let z = Tensor::zeros(vec![2, 2]).unwrap();
        assert_eq!(z.data(), &[0.0; 4]);
        assert_eq!(Tensor::scalar(3.0).data(), &[3.0]);
    }
}
