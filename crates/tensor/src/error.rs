//! Error type for the tensor runtime.

use std::fmt;

/// Errors produced by the tensor runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shapes are incompatible for the requested operation.
    ShapeMismatch { expected: String, actual: String },
    /// A named tensor (input, initializer, node output) was not found.
    NameNotFound(String),
    /// A graph is ill-formed (cycle, duplicate output, missing output...).
    InvalidGraph(String),
    /// Operator received the wrong number of inputs.
    ArityMismatch {
        op: String,
        expected: usize,
        actual: usize,
    },
    /// Numeric or bookkeeping failure.
    Internal(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::NameNotFound(n) => write!(f, "tensor not found: {n}"),
            TensorError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
            TensorError::ArityMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects {expected} inputs, got {actual}"),
            TensorError::Internal(msg) => write!(f, "internal tensor error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = TensorError::ArityMismatch {
            op: "MatMul".into(),
            expected: 2,
            actual: 1,
        };
        assert_eq!(e.to_string(), "MatMul expects 2 inputs, got 1");
        assert_eq!(
            TensorError::NameNotFound("x".into()).to_string(),
            "tensor not found: x"
        );
    }
}
