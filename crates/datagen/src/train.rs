//! Trained pipelines over the synthetic workloads — the models every
//! example and benchmark scores.

use crate::flights::FlightData;
use crate::hospital::HospitalData;
use raven_data::{Column, RecordBatch};
use raven_ml::featurize::{OneHotEncoder, StandardScaler, Transform};
use raven_ml::forest::ForestParams;
use raven_ml::linear::{LinearKind, LinearParams};
use raven_ml::mlp::MlpParams;
use raven_ml::tree::TreeParams;
use raven_ml::{
    DecisionTree, Estimator, FeatureStep, LinearModel, Mlp, Pipeline, RandomForest, Result,
};

/// How a raw column becomes features.
enum StepKind {
    Identity,
    Scale,
    OneHot,
}

/// Fit feature steps against the data in `batch`.
fn fit_steps(batch: &RecordBatch, spec: &[(&str, StepKind)]) -> Result<Vec<FeatureStep>> {
    let mut steps = Vec::with_capacity(spec.len());
    for (name, kind) in spec {
        let col = batch.column_by_name(name)?;
        let transform = match kind {
            StepKind::Identity => Transform::Identity,
            StepKind::Scale => Transform::Scale(StandardScaler::fit(&col.to_f64_vec()?)?),
            StepKind::OneHot => match col {
                Column::Utf8(values) => Transform::OneHot(OneHotEncoder::fit(values)?),
                other => {
                    // Integer categorical: encode by string form.
                    let strings: Vec<String> = (0..other.len())
                        .map(|i| other.get(i).unwrap().to_string())
                        .collect();
                    Transform::OneHot(OneHotEncoder::fit(&strings)?)
                }
            },
        };
        steps.push(FeatureStep::new(*name, transform));
    }
    Ok(steps)
}

fn featurized(steps: &[FeatureStep], batch: &RecordBatch) -> Result<(Vec<f64>, usize)> {
    // A probe pipeline just for featurization width/computation.
    let width: usize = steps.iter().map(|s| s.transform.n_outputs()).sum();
    let probe = Pipeline::new(
        steps.to_vec(),
        Estimator::Linear(LinearModel::new(
            vec![0.0; width.max(1)],
            0.0,
            LinearKind::Regression,
        )?),
    )?;
    Ok((probe.featurize(batch)?, width))
}

/// Hospital feature steps (paper Fig. 1: scaler + categorical encoding).
pub fn hospital_steps(data: &HospitalData) -> Result<Vec<FeatureStep>> {
    let batch = data.joined_batch();
    fit_steps(
        &batch,
        &[
            ("age", StepKind::Identity),
            ("gender", StepKind::OneHot),
            ("pregnant", StepKind::Identity),
            ("bp", StepKind::Identity),
            ("glucose", StepKind::Scale),
            ("wbc", StepKind::Scale),
            ("fetal_hr", StepKind::Identity),
        ],
    )
}

/// Decision-tree pipeline for hospital length-of-stay (regression).
pub fn hospital_tree(data: &HospitalData, max_depth: usize) -> Result<Pipeline> {
    let batch = data.joined_batch();
    let steps = hospital_steps(data)?;
    let (x, width) = featurized(&steps, &batch)?;
    let tree = DecisionTree::fit(
        &x,
        width,
        &data.length_of_stay,
        &TreeParams {
            max_depth,
            ..Default::default()
        },
    )?;
    Pipeline::new(steps, Estimator::Tree(tree))
}

/// Random-forest pipeline for hospital length-of-stay.
pub fn hospital_forest(data: &HospitalData, n_trees: usize, max_depth: usize) -> Result<Pipeline> {
    let batch = data.joined_batch();
    let steps = hospital_steps(data)?;
    let (x, width) = featurized(&steps, &batch)?;
    let forest = RandomForest::fit(
        &x,
        width,
        &data.length_of_stay,
        &ForestParams {
            n_trees,
            tree: TreeParams {
                max_depth,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    Pipeline::new(steps, Estimator::Forest(forest))
}

/// MLP pipeline for hospital long-stay classification (stay > 4 days).
pub fn hospital_mlp(data: &HospitalData, hidden: Vec<usize>, epochs: usize) -> Result<Pipeline> {
    let batch = data.joined_batch();
    let steps = hospital_steps(data)?;
    let (x, width) = featurized(&steps, &batch)?;
    let labels: Vec<f64> = data
        .length_of_stay
        .iter()
        .map(|&s| (s > 4.0) as i64 as f64)
        .collect();
    let mlp = Mlp::fit(
        &x,
        width,
        &labels,
        &MlpParams {
            hidden,
            epochs,
            ..Default::default()
        },
    )?;
    Pipeline::new(steps, Estimator::Mlp(mlp))
}

/// Flight feature steps: one-hot airports/carrier + scaled numerics.
pub fn flight_steps(data: &FlightData) -> Result<Vec<FeatureStep>> {
    fit_steps(
        data.flights.batch(),
        &[
            ("origin", StepKind::OneHot),
            ("dest", StepKind::OneHot),
            ("carrier", StepKind::OneHot),
            ("distance", StepKind::Scale),
            ("dep_hour", StepKind::Scale),
            ("day_of_week", StepKind::Scale),
        ],
    )
}

/// L1-regularized logistic regression for flight delay — the Fig. 2(a)
/// model family. Higher `l1` yields higher weight sparsity.
pub fn flight_logistic(data: &FlightData, l1: f64, epochs: usize) -> Result<Pipeline> {
    let steps = flight_steps(data)?;
    let (x, width) = featurized(&steps, data.flights.batch())?;
    let model = LinearModel::fit(
        &x,
        width,
        &data.delayed,
        &LinearParams {
            kind: LinearKind::Logistic,
            l1,
            learning_rate: 0.2,
            epochs,
        },
    )?;
    Pipeline::new(steps, Estimator::Linear(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights::FlightParams;

    #[test]
    fn hospital_tree_learns_the_rule() {
        let data = crate::hospital::generate(3000, 42);
        let pipeline = hospital_tree(&data, 8).unwrap();
        let batch = data.joined_batch();
        let preds = pipeline.predict(&batch).unwrap();
        // R²-style check: predictions track labels closely.
        let mean = data.length_of_stay.iter().sum::<f64>() / data.len() as f64;
        let ss_tot: f64 = data
            .length_of_stay
            .iter()
            .map(|y| (y - mean) * (y - mean))
            .sum();
        let ss_res: f64 = preds
            .iter()
            .zip(&data.length_of_stay)
            .map(|(p, y)| (p - y) * (p - y))
            .sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.9, "tree R² = {r2}");
    }

    #[test]
    fn hospital_forest_and_mlp_fit() {
        let data = crate::hospital::generate(800, 1);
        let forest = hospital_forest(&data, 5, 6).unwrap();
        let batch = data.joined_batch();
        let preds = forest.predict(&batch).unwrap();
        assert_eq!(preds.len(), 800);

        let mlp = hospital_mlp(&data, vec![8], 15).unwrap();
        let preds = mlp.predict(&batch).unwrap();
        // Probabilities in [0,1].
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn flight_logistic_sparsity_grows_with_l1() {
        let data = crate::flights::generate(3000, &FlightParams::default());
        let dense = flight_logistic(&data, 0.0005, 150).unwrap();
        let sparse = flight_logistic(&data, 0.02, 150).unwrap();
        let sp = |p: &Pipeline| match p.estimator() {
            Estimator::Linear(m) => m.sparsity(),
            _ => unreachable!(),
        };
        assert!(
            sp(&sparse) > sp(&dense),
            "sparsity {} !> {}",
            sp(&sparse),
            sp(&dense)
        );
        assert!(sp(&sparse) > 0.3, "sparse model sparsity {}", sp(&sparse));
    }

    #[test]
    fn flight_model_beats_chance() {
        let data = crate::flights::generate(4000, &FlightParams::default());
        let model = flight_logistic(&data, 0.001, 200).unwrap();
        let preds = model.predict(data.flights.batch()).unwrap();
        let accuracy = preds
            .iter()
            .zip(&data.delayed)
            .filter(|(p, y)| (**p > 0.5) == (**y > 0.5))
            .count() as f64
            / data.len() as f64;
        assert!(accuracy > 0.6, "accuracy {accuracy}");
    }

    #[test]
    fn feature_width_matches_cardinalities() {
        let data = crate::flights::generate(
            500,
            &FlightParams {
                n_airports: 10,
                n_carriers: 4,
                seed: 2,
            },
        );
        let steps = flight_steps(&data).unwrap();
        let width: usize = steps.iter().map(|s| s.transform.n_outputs()).sum();
        // 10 origins + 10 dests + 4 carriers + 3 numerics.
        assert_eq!(width, 27);
    }
}
