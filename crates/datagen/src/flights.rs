//! The flight-delay workload (the paper's second dataset, standing in for
//! the Kaggle `usdot/flight-delays` data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raven_data::{Catalog, Column, DataType, Table};

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct FlightParams {
    pub n_airports: usize,
    pub n_carriers: usize,
    pub seed: u64,
}

impl Default for FlightParams {
    fn default() -> Self {
        FlightParams {
            n_airports: 30,
            n_carriers: 8,
            seed: 42,
        }
    }
}

/// The flights table plus training labels.
#[derive(Debug, Clone)]
pub struct FlightData {
    /// `flights(id, origin, dest, carrier, distance, dep_hour, day_of_week)`.
    pub flights: Table,
    /// Binary delay labels (training only).
    pub delayed: Vec<f64>,
    /// Airport code list (index = category id).
    pub airports: Vec<String>,
    /// Carrier code list.
    pub carriers: Vec<String>,
}

/// Feature columns used by flight models, in canonical order.
pub const FEATURES: [&str; 6] = [
    "origin",
    "dest",
    "carrier",
    "distance",
    "dep_hour",
    "day_of_week",
];

/// Generate `n` flights.
pub fn generate(n: usize, params: &FlightParams) -> FlightData {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let airports: Vec<String> = (0..params.n_airports)
        .map(|i| {
            format!(
                "A{}{}{}",
                (b'A' + (i / 26 / 26) as u8 % 26) as char,
                (b'A' + (i / 26) as u8 % 26) as char,
                (b'A' + (i % 26) as u8) as char
            )
        })
        .collect();
    let carriers: Vec<String> = (0..params.n_carriers).map(|i| format!("C{i}")).collect();
    // Hidden per-airport / per-carrier delay propensities.
    let airport_bias: Vec<f64> = (0..params.n_airports)
        .map(|_| rng.gen_range(-1.0..1.0f64))
        .collect();
    let carrier_bias: Vec<f64> = (0..params.n_carriers)
        .map(|_| rng.gen_range(-0.8..0.8f64))
        .collect();

    let mut origin = Vec::with_capacity(n);
    let mut dest = Vec::with_capacity(n);
    let mut carrier = Vec::with_capacity(n);
    let mut distance = Vec::with_capacity(n);
    let mut dep_hour = Vec::with_capacity(n);
    let mut dow = Vec::with_capacity(n);
    let mut delayed = Vec::with_capacity(n);

    for _ in 0..n {
        let o = rng.gen_range(0..params.n_airports);
        let mut d = rng.gen_range(0..params.n_airports);
        if d == o {
            d = (d + 1) % params.n_airports;
        }
        let c = rng.gen_range(0..params.n_carriers);
        let dist = rng.gen_range(100.0..4800.0f64);
        let hour = rng.gen_range(5..23i64);
        let day = rng.gen_range(1..=7i64);

        let score = airport_bias[o] * 0.7
            + airport_bias[d]
            + carrier_bias[c]
            + (hour as f64 - 12.0) * 0.08 // evenings cascade
            + (dist / 4800.0) * 0.4
            + if day == 5 || day == 7 { 0.3 } else { 0.0 }
            + rng.gen_range(-0.6..0.6f64);
        delayed.push((score > 0.35) as i64 as f64);

        origin.push(airports[o].clone());
        dest.push(airports[d].clone());
        carrier.push(carriers[c].clone());
        distance.push(dist);
        dep_hour.push(hour);
        dow.push(day);
    }

    let flights = Table::try_new(
        Schema_flights(),
        vec![
            Column::Int64((0..n as i64).collect()),
            Column::Utf8(origin),
            Column::Utf8(dest),
            Column::Utf8(carrier),
            Column::Float64(distance),
            Column::Int64(dep_hour),
            Column::Int64(dow),
        ],
    )
    .expect("flights construction");

    FlightData {
        flights,
        delayed,
        airports,
        carriers,
    }
}

#[allow(non_snake_case)]
fn Schema_flights() -> std::sync::Arc<raven_data::Schema> {
    raven_data::Schema::from_pairs(&[
        ("id", DataType::Int64),
        ("origin", DataType::Utf8),
        ("dest", DataType::Utf8),
        ("carrier", DataType::Utf8),
        ("distance", DataType::Float64),
        ("dep_hour", DataType::Int64),
        ("day_of_week", DataType::Int64),
    ])
    .into_shared()
}

impl FlightData {
    /// Register the table in a catalog.
    pub fn register(&self, catalog: &Catalog) -> raven_data::Result<()> {
        catalog.register("flights", self.flights.clone())
    }

    /// Number of flights.
    pub fn len(&self) -> usize {
        self.flights.num_rows()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = FlightParams::default();
        let a = generate(200, &p);
        let b = generate(200, &p);
        assert_eq!(a.flights, b.flights);
        assert_eq!(a.delayed, b.delayed);
    }

    #[test]
    fn schema_and_cardinalities() {
        let p = FlightParams {
            n_airports: 12,
            n_carriers: 3,
            seed: 1,
        };
        let d = generate(500, &p);
        assert_eq!(d.airports.len(), 12);
        assert_eq!(d.carriers.len(), 3);
        assert_eq!(
            d.flights.schema().names(),
            vec![
                "id",
                "origin",
                "dest",
                "carrier",
                "distance",
                "dep_hour",
                "day_of_week"
            ]
        );
        // All values drawn from the code lists.
        let dests = d
            .flights
            .column_by_name("dest")
            .unwrap()
            .utf8_values()
            .unwrap();
        assert!(dests.iter().all(|v| d.airports.contains(v)));
        // Airport codes are unique.
        let mut codes = d.airports.clone();
        codes.dedup();
        assert_eq!(codes.len(), 12);
    }

    #[test]
    fn origin_differs_from_dest() {
        let d = generate(300, &FlightParams::default());
        let o = d
            .flights
            .column_by_name("origin")
            .unwrap()
            .utf8_values()
            .unwrap();
        let t = d
            .flights
            .column_by_name("dest")
            .unwrap()
            .utf8_values()
            .unwrap();
        assert!(o.iter().zip(t).all(|(a, b)| a != b));
    }

    #[test]
    fn label_balance_reasonable() {
        let d = generate(5000, &FlightParams::default());
        let rate = d.delayed.iter().sum::<f64>() / d.len() as f64;
        assert!(rate > 0.1 && rate < 0.9, "delay rate {rate}");
    }

    #[test]
    fn labels_correlate_with_airport() {
        // Some airport should have a noticeably different delay rate than
        // the average — that's the signal clustering exploits.
        let d = generate(10_000, &FlightParams::default());
        let dests = d
            .flights
            .column_by_name("dest")
            .unwrap()
            .utf8_values()
            .unwrap();
        let global = d.delayed.iter().sum::<f64>() / d.len() as f64;
        let mut max_gap: f64 = 0.0;
        for airport in &d.airports {
            let rows: Vec<usize> = (0..d.len()).filter(|&i| &dests[i] == airport).collect();
            if rows.len() < 50 {
                continue;
            }
            let rate = rows.iter().map(|&i| d.delayed[i]).sum::<f64>() / rows.len() as f64;
            max_gap = max_gap.max((rate - global).abs());
        }
        assert!(max_gap > 0.1, "max airport gap {max_gap}");
    }
}
