//! The hospital length-of-stay workload (the paper's running example).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raven_data::{Catalog, Column, DataType, RecordBatch, Schema, Table};
use std::sync::Arc;

/// The three tables of the running example plus training labels.
#[derive(Debug, Clone)]
pub struct HospitalData {
    /// `patient_info(id, age, gender, pregnant)`.
    pub patient_info: Table,
    /// `blood_tests(id, bp, glucose, wbc)`.
    pub blood_tests: Table,
    /// `prenatal_tests(id, fetal_hr, afp)`.
    pub prenatal_tests: Table,
    /// Length-of-stay labels aligned with patient ids (training only; an
    /// analyst's inference query never sees them).
    pub length_of_stay: Vec<f64>,
}

/// Feature columns used by hospital models, in canonical order.
pub const FEATURES: [&str; 7] = [
    "age", "gender", "pregnant", "bp", "glucose", "wbc", "fetal_hr",
];

/// Generate `n` patients with seeded randomness.
pub fn generate(n: usize, seed: u64) -> HospitalData {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut age = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);
    let mut pregnant = Vec::with_capacity(n);
    let mut bp = Vec::with_capacity(n);
    let mut glucose = Vec::with_capacity(n);
    let mut wbc = Vec::with_capacity(n);
    let mut fetal_hr = Vec::with_capacity(n);
    let mut afp = Vec::with_capacity(n);
    let mut stay = Vec::with_capacity(n);

    for _ in 0..n {
        let a = rng.gen_range(18.0..90.0f64);
        let female = rng.gen_bool(0.5);
        let p = female && a < 45.0 && rng.gen_bool(0.4);
        let blood_pressure = rng.gen_range(90.0..190.0f64)
            + if a > 60.0 {
                rng.gen_range(0.0..15.0)
            } else {
                0.0
            };
        let g = rng.gen_range(70.0..200.0f64);
        let w = rng.gen_range(3.5..12.0f64);
        // 15% of pregnancies have no fetal-heart-rate reading yet, so the
        // prenatal columns correlate with — but don't perfectly shadow —
        // the pregnancy flag (otherwise trained trees split on fetal_hr
        // instead of pregnant and the running example loses its shape).
        let fhr = if p && rng.gen_bool(0.85) {
            rng.gen_range(110.0..170.0f64)
        } else {
            0.0
        };
        let marker = if p {
            rng.gen_range(10.0..200.0f64)
        } else {
            0.0
        };

        // The Fig.-1 label structure: pregnancy routes on blood pressure;
        // everyone else routes on age — plus mild noise.
        let base = if p {
            if blood_pressure > 140.0 {
                7.0
            } else if blood_pressure > 120.0 {
                4.0
            } else {
                2.0
            }
        } else if a > 65.0 {
            5.0
        } else if a > 35.0 {
            3.0
        } else {
            1.0
        };
        let label = (base + rng.gen_range(-0.3..0.3f64)).max(0.5);

        age.push(a);
        gender.push(if female {
            "F".to_string()
        } else {
            "M".to_string()
        });
        pregnant.push(p as i64);
        bp.push(blood_pressure);
        glucose.push(g);
        wbc.push(w);
        fetal_hr.push(fhr);
        afp.push(marker);
        stay.push(label);
    }

    let ids: Vec<i64> = (0..n as i64).collect();
    let patient_info = Table::try_new(
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("age", DataType::Float64),
            ("gender", DataType::Utf8),
            ("pregnant", DataType::Int64),
        ])
        .into_shared(),
        vec![
            Column::Int64(ids.clone()),
            Column::Float64(age),
            Column::Utf8(gender),
            Column::Int64(pregnant),
        ],
    )
    .expect("patient_info construction");
    let blood_tests = Table::try_new(
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("bp", DataType::Float64),
            ("glucose", DataType::Float64),
            ("wbc", DataType::Float64),
        ])
        .into_shared(),
        vec![
            Column::Int64(ids.clone()),
            Column::Float64(bp),
            Column::Float64(glucose),
            Column::Float64(wbc),
        ],
    )
    .expect("blood_tests construction");
    let prenatal_tests = Table::try_new(
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("fetal_hr", DataType::Float64),
            ("afp", DataType::Float64),
        ])
        .into_shared(),
        vec![
            Column::Int64(ids),
            Column::Float64(fetal_hr),
            Column::Float64(afp),
        ],
    )
    .expect("prenatal_tests construction");

    HospitalData {
        patient_info,
        blood_tests,
        prenatal_tests,
        length_of_stay: stay,
    }
}

impl HospitalData {
    /// Register the three tables in a catalog.
    pub fn register(&self, catalog: &Catalog) -> raven_data::Result<()> {
        catalog.register("patient_info", self.patient_info.clone())?;
        catalog.register("blood_tests", self.blood_tests.clone())?;
        catalog.register("prenatal_tests", self.prenatal_tests.clone())?;
        Ok(())
    }

    /// The joined training batch (id-aligned single batch over all
    /// feature columns; ids are aligned 1:1 by construction).
    pub fn joined_batch(&self) -> RecordBatch {
        let mut fields = Vec::new();
        let mut columns = Vec::new();
        for (table, skip_id) in [
            (&self.patient_info, false),
            (&self.blood_tests, true),
            (&self.prenatal_tests, true),
        ] {
            for (f, c) in table.schema().fields().iter().zip(table.batch().columns()) {
                if skip_id && f.name == "id" {
                    continue;
                }
                fields.push(f.clone());
                columns.push(c.clone());
            }
        }
        RecordBatch::try_new_shared(Arc::new(Schema::new(fields)), columns)
            .expect("joined batch construction")
    }

    /// Number of patients.
    pub fn len(&self) -> usize {
        self.patient_info.num_rows()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(100, 7);
        let b = generate(100, 7);
        assert_eq!(a.patient_info, b.patient_info);
        assert_eq!(a.length_of_stay, b.length_of_stay);
        let c = generate(100, 8);
        assert_ne!(a.length_of_stay, c.length_of_stay);
    }

    #[test]
    fn schema_shape() {
        let d = generate(10, 1);
        assert_eq!(d.patient_info.num_rows(), 10);
        assert_eq!(
            d.patient_info.schema().names(),
            vec!["id", "age", "gender", "pregnant"]
        );
        assert_eq!(
            d.blood_tests.schema().names(),
            vec!["id", "bp", "glucose", "wbc"]
        );
        assert_eq!(
            d.prenatal_tests.schema().names(),
            vec!["id", "fetal_hr", "afp"]
        );
        assert_eq!(d.length_of_stay.len(), 10);
    }

    #[test]
    fn labels_follow_rule_structure() {
        let d = generate(2000, 42);
        let batch = d.joined_batch();
        let pregnant = batch
            .column_by_name("pregnant")
            .unwrap()
            .i64_values()
            .unwrap();
        let bp = batch.column_by_name("bp").unwrap().f64_values().unwrap();
        for i in 0..d.len() {
            if pregnant[i] == 1 && bp[i] > 140.0 {
                assert!(d.length_of_stay[i] > 6.0, "row {i}");
            }
            if pregnant[i] == 0 {
                assert!(d.length_of_stay[i] < 5.5, "row {i}");
            }
        }
    }

    #[test]
    fn pregnancy_consistency() {
        let d = generate(500, 3);
        let batch = d.joined_batch();
        let pregnant = batch
            .column_by_name("pregnant")
            .unwrap()
            .i64_values()
            .unwrap();
        let gender = batch
            .column_by_name("gender")
            .unwrap()
            .utf8_values()
            .unwrap();
        let fhr = batch
            .column_by_name("fetal_hr")
            .unwrap()
            .f64_values()
            .unwrap();
        let mut measured = 0usize;
        let mut pregnant_count = 0usize;
        for i in 0..d.len() {
            if pregnant[i] == 1 {
                assert_eq!(gender[i], "F");
                pregnant_count += 1;
                if fhr[i] > 0.0 {
                    measured += 1;
                }
            } else {
                assert_eq!(fhr[i], 0.0);
            }
        }
        // Most — but not all — pregnancies have a reading (see generator).
        assert!(measured > pregnant_count / 2);
        assert!(measured < pregnant_count);
    }

    #[test]
    fn register_and_join_width() {
        let d = generate(20, 5);
        let cat = Catalog::new();
        d.register(&cat).unwrap();
        assert_eq!(cat.table_names().len(), 3);
        let joined = d.joined_batch();
        assert_eq!(joined.num_columns(), 4 + 3 + 2);
        // All FEATURES resolvable.
        for f in FEATURES {
            assert!(joined.column_by_name(f).is_ok(), "{f}");
        }
    }
}
