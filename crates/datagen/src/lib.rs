//! # raven-datagen
//!
//! Deterministic synthetic workloads standing in for the paper's two
//! datasets (real patient data and the Kaggle flight-delay dataset are not
//! available in this environment — see `DESIGN.md` §5):
//!
//! * [`hospital`] — the running example's schema: `patient_info ⋈
//!   blood_tests ⋈ prenatal_tests`, with a length-of-stay label generated
//!   by the same kind of rule structure the paper's Fig. 1 decision tree
//!   encodes (pregnancy/blood-pressure/age interactions plus noise), so
//!   trained trees develop the branch shape the optimizations exploit;
//! * [`flights`] — a flight table with high-cardinality categorical
//!   features (origin/destination airports, carrier) whose one-hot
//!   encodings give L1-regularized models realistic sparsity, plus a
//!   delay label correlated with carrier, airport, hour and distance.
//!
//! Everything is seeded and reproducible; row counts scale to the paper's
//! 1K–10M sweep.

pub mod flights;
pub mod hospital;
pub mod train;

pub use flights::FlightData;
pub use hospital::HospitalData;
