//! Micro-harness for the columnar kernel: scalar walk vs [`FlatForest`]
//! on a fitted forest over a synthetic morsel. Mirrors the forest-heavy
//! section of `crates/bench/benches/serving.rs` without pulling in the
//! whole serving stack, so kernel changes can be timed in seconds:
//!
//! ```sh
//! cargo run -p raven-ml --release --example kernel_bench
//! ```

use raven_ml::forest::ForestParams;
use raven_ml::tree::TreeParams;
use raven_ml::{Estimator, FlatForest, RandomForest};
use std::time::Instant;

fn main() {
    let n_features = 7;
    let rows = 20_000usize;
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };

    let train_rows = 4_000;
    let x: Vec<f64> = (0..train_rows * n_features)
        .map(|_| next() * 10.0)
        .collect();
    let y: Vec<f64> = (0..train_rows)
        .map(|r| {
            let row = &x[r * n_features..(r + 1) * n_features];
            row.iter().sum::<f64>() + next()
        })
        .collect();
    let params = ForestParams {
        n_trees: 48,
        tree: TreeParams {
            max_depth: 8,
            ..TreeParams::default()
        },
        ..ForestParams::default()
    };
    let forest = RandomForest::fit(&x, n_features, &y, &params).unwrap();
    let estimator = Estimator::Forest(forest);
    let flat = FlatForest::from_estimator(&estimator).unwrap();
    println!("{}", flat.describe());

    let batch: Vec<f64> = (0..rows * n_features).map(|_| next() * 10.0).collect();

    let time = |label: &str, f: &dyn Fn() -> Vec<f64>| -> (f64, Vec<f64>) {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..7 {
            let t0 = Instant::now();
            out = f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("  {label:<28} {best:8.2} ms/morsel");
        (best, out)
    };

    let (scalar_ms, scalar) = time("scalar row-at-a-time", &|| {
        estimator.predict_batch(&batch, rows).unwrap()
    });
    let (kernel_ms, kernel) = time("columnar kernel", &|| flat.score_raw(&batch, rows).unwrap());
    // Gather-phase floor: a forest of single-leaf trees does no traversal,
    // so its time is the fused featurization + accumulation overhead.
    let leaves: Vec<raven_ml::DecisionTree> = (0..48)
        .map(|_| {
            raven_ml::DecisionTree::from_nodes(
                vec![raven_ml::tree::TreeNode::Leaf { value: 1.0 }],
                n_features,
            )
            .unwrap()
        })
        .collect();
    let stub = FlatForest::from_estimator(&Estimator::Forest(
        RandomForest::from_trees(leaves).unwrap(),
    ))
    .unwrap();
    time("gather-only floor", &|| {
        stub.score_raw(&batch, rows).unwrap()
    });

    let identical = scalar
        .iter()
        .zip(&kernel)
        .all(|(s, k)| s.to_bits() == k.to_bits());
    println!(
        "  speedup {:.1}x  bitwise identical: {identical}",
        scalar_ms / kernel_ms
    );
}
