//! Scalar-vs-kernel differential suite: for random trees and forests and
//! random morsels — including NaN, ±∞, empty and single-row batches —
//! the flattened columnar kernel must produce **bitwise identical**
//! scores to the scalar row-at-a-time walk. Any divergence is a planted
//! placement bug: the optimizer swaps strategies per query, so two
//! executions of the same query must never disagree in the last ulp.

use proptest::collection::vec;
use proptest::prelude::*;
use raven_ml::tree::TreeNode;
use raven_ml::{DecisionTree, Estimator, FlatForest, RandomForest};

/// SplitMix64: a tiny deterministic generator for tree *structure* (the
/// proptest shim supplies the seeds; the recursion below needs its own
/// stream so a generated case is one compact, printable integer).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Grow a random tree arena (root at 0) of at most `depth` levels.
fn grow(state: &mut u64, nodes: &mut Vec<TreeNode>, n_features: usize, depth: usize) -> usize {
    let idx = nodes.len();
    if depth == 0 || next(state).is_multiple_of(4) {
        nodes.push(TreeNode::Leaf {
            value: unit(state) * 20.0 - 10.0,
        });
        return idx;
    }
    // Placeholder; replaced once both subtrees are laid out.
    nodes.push(TreeNode::Leaf { value: 0.0 });
    let feature = (next(state) as usize) % n_features;
    let threshold = unit(state) * 20.0 - 10.0;
    let left = grow(state, nodes, n_features, depth - 1);
    let right = grow(state, nodes, n_features, depth - 1);
    nodes[idx] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    idx
}

fn random_tree(seed: u64, n_features: usize, depth: usize) -> DecisionTree {
    let mut state = seed;
    let mut nodes = Vec::new();
    grow(&mut state, &mut nodes, n_features, depth);
    DecisionTree::from_nodes(nodes, n_features).unwrap()
}

/// Feature values spanning the adversarial corners: ordinary finite
/// values, exact thresholds-scale values, NaN, and both infinities.
fn feature_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -10.0..10.0,
        -1e6..1e6,
        Just(0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn assert_bitwise(scalar: &[f64], kernel: &[f64]) {
    assert_eq!(scalar.len(), kernel.len());
    for (r, (s, k)) in scalar.iter().zip(kernel).enumerate() {
        assert_eq!(
            s.to_bits(),
            k.to_bits(),
            "row {r}: scalar {s:?} vs kernel {k:?}"
        );
    }
}

proptest! {
    #[test]
    fn tree_kernel_matches_scalar_walk(
        seed in 0..u64::MAX,
        n_features in 1..5usize,
        depth in 0..6usize,
        values in vec(feature_value(), 0..120),
    ) {
        let tree = random_tree(seed, n_features, depth);
        let rows = values.len() / n_features;
        let x = &values[..rows * n_features];
        let estimator = Estimator::Tree(tree);
        let scalar = estimator.predict_batch(x, rows).unwrap();
        let flat = FlatForest::from_estimator(&estimator).unwrap();
        let kernel = flat.score_raw(x, rows).unwrap();
        assert_bitwise(&scalar, &kernel);
    }

    #[test]
    fn forest_kernel_matches_scalar_mean(
        seed in 0..u64::MAX,
        n_features in 1..4usize,
        n_trees in 1..9usize,
        depth in 0..5usize,
        values in vec(feature_value(), 0..90),
    ) {
        let trees: Vec<DecisionTree> = (0..n_trees)
            .map(|t| random_tree(seed.wrapping_add(t as u64), n_features, depth))
            .collect();
        let forest = RandomForest::from_trees(trees).unwrap();
        let rows = values.len() / n_features;
        let x = &values[..rows * n_features];
        let estimator = Estimator::Forest(forest);
        let scalar = estimator.predict_batch(x, rows).unwrap();
        let flat = FlatForest::from_estimator(&estimator).unwrap();
        let kernel = flat.score_raw(x, rows).unwrap();
        assert_bitwise(&scalar, &kernel);
    }

    #[test]
    fn single_row_and_empty_morsels(seed in 0..u64::MAX, n_features in 1..4usize) {
        let tree = random_tree(seed, n_features, 4);
        let estimator = Estimator::Tree(tree);
        let flat = FlatForest::from_estimator(&estimator).unwrap();
        // Empty morsel scores to an empty batch, never an error.
        prop_assert!(flat.score_raw(&[], 0).unwrap().is_empty());
        // A single all-NaN row still routes deterministically.
        let row = vec![f64::NAN; n_features];
        let scalar = estimator.predict_batch(&row, 1).unwrap();
        let kernel = flat.score_raw(&row, 1).unwrap();
        assert_bitwise(&scalar, &kernel);
    }

    #[test]
    fn truncated_morsels_are_rejected_not_misread(
        seed in 0..u64::MAX,
        n_features in 2..5usize,
        rows in 1..8usize,
    ) {
        let tree = random_tree(seed, n_features, 3);
        let flat = FlatForest::from_estimator(&Estimator::Tree(tree)).unwrap();
        // One value short of `rows` full rows: a typed arity error, not a
        // silent mis-striding of the columnar gather.
        let short = vec![1.0; rows * n_features - 1];
        prop_assert!(flat.score_raw(&short, rows).is_err());
    }
}
