//! Model pipelines: featurization steps + estimator.
//!
//! A [`Pipeline`] is the paper's "model pipeline": the unit a data
//! scientist trains, stores in the database, and a SQL query invokes via
//! `PREDICT`. It owns:
//!
//! * an ordered list of [`FeatureStep`]s, each consuming one named input
//!   column and producing one or more numeric features;
//! * an [`Estimator`] scoring the concatenated feature vector.
//!
//! The flattened feature layout (each input column expands to a contiguous
//! block of features) is what makes the paper's cross-optimizations
//! tractable: zero weights map back to input columns
//! (model-projection pushdown), and relational predicates map onto
//! feature intervals (predicate-based model pruning).

use crate::error::MlError;
use crate::featurize::Transform;
use crate::forest::RandomForest;
use crate::linear::{LinearKind, LinearModel};
use crate::mlp::Mlp;
use crate::tree::{DecisionTree, Interval};
use crate::Result;
use raven_data::RecordBatch;
use std::collections::BTreeSet;

/// One featurization step: `column` → `transform`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStep {
    pub column: String,
    pub transform: Transform,
}

impl FeatureStep {
    pub fn new(column: impl Into<String>, transform: Transform) -> Self {
        FeatureStep {
            column: column.into(),
            transform,
        }
    }
}

/// The model at the end of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Estimator {
    Tree(DecisionTree),
    Forest(RandomForest),
    Linear(LinearModel),
    Mlp(Mlp),
}

impl Estimator {
    /// Number of features the estimator expects.
    pub fn n_features(&self) -> usize {
        match self {
            Estimator::Tree(t) => t.n_features(),
            Estimator::Forest(f) => f.n_features(),
            Estimator::Linear(l) => l.n_features(),
            Estimator::Mlp(m) => m.n_features(),
        }
    }

    /// Predict one featurized row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            Estimator::Tree(t) => t.predict_row(row),
            Estimator::Forest(f) => f.predict_row(row),
            Estimator::Linear(l) => l.predict_row(row),
            Estimator::Mlp(m) => m.predict_row(row),
        }
    }

    /// Predict a row-major featurized batch.
    pub fn predict_batch(&self, x: &[f64], rows: usize) -> Result<Vec<f64>> {
        match self {
            Estimator::Tree(t) => t.predict_batch(x, rows),
            Estimator::Forest(f) => f.predict_batch(x, rows),
            Estimator::Linear(l) => l.predict_batch(x, rows),
            Estimator::Mlp(m) => m.predict_batch(x, rows),
        }
    }

    /// Feature indices the estimator can actually be influenced by.
    ///
    /// For trees/forests: features appearing in a split. For linear models:
    /// non-zero weights. MLPs conservatively use everything.
    pub fn used_features(&self) -> BTreeSet<usize> {
        match self {
            Estimator::Tree(t) => t.used_features(),
            Estimator::Forest(f) => f.used_features(),
            Estimator::Linear(l) => l.nonzero_features().into_iter().collect(),
            Estimator::Mlp(m) => (0..m.n_features()).collect(),
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Estimator::Tree(t) => {
                format!("DecisionTree(depth={}, nodes={})", t.depth(), t.n_nodes())
            }
            Estimator::Forest(f) => format!(
                "RandomForest(trees={}, nodes={})",
                f.trees().len(),
                f.n_nodes()
            ),
            Estimator::Linear(l) => {
                let kind = match l.kind() {
                    LinearKind::Regression => "LinearRegression",
                    LinearKind::Logistic => "LogisticRegression",
                };
                format!(
                    "{kind}(features={}, sparsity={:.1}%)",
                    l.n_features(),
                    l.sparsity() * 100.0
                )
            }
            Estimator::Mlp(m) => format!(
                "MLP(layers={}, features={})",
                m.layers().len(),
                m.n_features()
            ),
        }
    }
}

/// A trained model pipeline: featurization + estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    steps: Vec<FeatureStep>,
    estimator: Estimator,
}

impl Pipeline {
    /// Build a pipeline, validating that the steps' total feature width
    /// matches the estimator's expectation.
    pub fn new(steps: Vec<FeatureStep>, estimator: Estimator) -> Result<Self> {
        if steps.is_empty() {
            return Err(MlError::InvalidTrainingData("pipeline has no steps".into()));
        }
        let width: usize = steps.iter().map(|s| s.transform.n_outputs()).sum();
        if width != estimator.n_features() {
            return Err(MlError::DimensionMismatch {
                expected: estimator.n_features(),
                actual: width,
            });
        }
        Ok(Pipeline { steps, estimator })
    }

    /// The featurization steps.
    pub fn steps(&self) -> &[FeatureStep] {
        &self.steps
    }

    /// The estimator.
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// Replace the estimator (used by optimizer rewrites such as pruning);
    /// the new estimator must accept the same feature width.
    pub fn with_estimator(&self, estimator: Estimator) -> Result<Pipeline> {
        Pipeline::new(self.steps.clone(), estimator)
    }

    /// Names of the raw input columns, in step order.
    pub fn input_columns(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.column.as_str()).collect()
    }

    /// Flattened feature names.
    pub fn feature_names(&self) -> Vec<String> {
        self.steps
            .iter()
            .flat_map(|s| s.transform.output_names(&s.column))
            .collect()
    }

    /// Total feature width.
    pub fn n_features(&self) -> usize {
        self.steps.iter().map(|s| s.transform.n_outputs()).sum()
    }

    /// Map a feature index back to the producing step index.
    pub fn feature_to_step(&self, feature: usize) -> Result<usize> {
        let mut offset = 0;
        for (i, step) in self.steps.iter().enumerate() {
            let w = step.transform.n_outputs();
            if feature < offset + w {
                return Ok(i);
            }
            offset += w;
        }
        Err(MlError::DimensionMismatch {
            expected: self.n_features(),
            actual: feature,
        })
    }

    /// Half-open feature range `[start, end)` produced by step `step`.
    pub fn step_feature_range(&self, step: usize) -> Result<(usize, usize)> {
        if step >= self.steps.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.steps.len(),
                actual: step,
            });
        }
        let start: usize = self.steps[..step]
            .iter()
            .map(|s| s.transform.n_outputs())
            .sum();
        Ok((start, start + self.steps[step].transform.n_outputs()))
    }

    /// Input columns whose features the estimator actually uses. The
    /// complement is what model-projection pushdown projects out.
    pub fn used_input_columns(&self) -> Result<BTreeSet<String>> {
        let mut used = BTreeSet::new();
        for f in self.estimator.used_features() {
            let step = self.feature_to_step(f)?;
            used.insert(self.steps[step].column.clone());
        }
        Ok(used)
    }

    /// Encode raw inputs from a record batch: one value per (row, step) —
    /// numeric passthrough, categorical → category index. Row-major
    /// `[rows × steps]`.
    pub fn encode_inputs(&self, batch: &RecordBatch) -> Result<Vec<f64>> {
        let n = batch.num_rows();
        let k = self.steps.len();
        let per_step: Vec<Vec<f64>> = self
            .steps
            .iter()
            .map(|s| {
                let col = batch.column_by_name(&s.column)?;
                s.transform.encode_raw(col)
            })
            .collect::<Result<_>>()?;
        let mut out = vec![0.0; n * k];
        for (j, col) in per_step.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                out[i * k + j] = v;
            }
        }
        Ok(out)
    }

    /// Featurize raw encoded inputs (`[rows × steps]`) into the full
    /// feature matrix (`[rows × n_features]`).
    pub fn featurize_raw(&self, raw: &[f64], rows: usize) -> Result<Vec<f64>> {
        let k = self.steps.len();
        if raw.len() != rows * k {
            return Err(MlError::DimensionMismatch {
                expected: rows * k,
                actual: raw.len(),
            });
        }
        let width = self.n_features();
        let mut out = Vec::with_capacity(rows * width);
        for r in 0..rows {
            let row = &raw[r * k..(r + 1) * k];
            for (step, &v) in self.steps.iter().zip(row) {
                step.transform.featurize_value(v, &mut out);
            }
        }
        Ok(out)
    }

    /// Featurize a record batch directly.
    pub fn featurize(&self, batch: &RecordBatch) -> Result<Vec<f64>> {
        let raw = self.encode_inputs(batch)?;
        self.featurize_raw(&raw, batch.num_rows())
    }

    /// End-to-end prediction over a record batch (the reference
    /// "framework-style" scoring path the paper's baselines use).
    pub fn predict(&self, batch: &RecordBatch) -> Result<Vec<f64>> {
        let features = self.featurize(batch)?;
        self.estimator.predict_batch(&features, batch.num_rows())
    }

    /// End-to-end prediction from raw encoded inputs.
    pub fn predict_raw(&self, raw: &[f64], rows: usize) -> Result<Vec<f64>> {
        let features = self.featurize_raw(raw, rows)?;
        self.estimator.predict_batch(&features, rows)
    }

    /// Translate per-*input-column* intervals into per-*feature* intervals
    /// (the bridge from relational predicates to model pruning).
    ///
    /// For numeric steps the interval carries over (scaled if needed); for
    /// one-hot steps an equality constraint pins each indicator feature to
    /// 0 or 1.
    pub fn feature_bounds(&self, column_bounds: &[(String, Interval)]) -> Result<Vec<Interval>> {
        let mut bounds = vec![Interval::all(); self.n_features()];
        for (col, interval) in column_bounds {
            for (si, step) in self.steps.iter().enumerate() {
                if &step.column != col {
                    continue;
                }
                let (start, end) = self.step_feature_range(si)?;
                match &step.transform {
                    Transform::Identity => bounds[start] = bounds[start].intersect(*interval),
                    Transform::Scale(s) => {
                        let lo = s.transform_value(interval.lo);
                        let hi = s.transform_value(interval.hi);
                        bounds[start] = bounds[start].intersect(Interval { lo, hi });
                    }
                    Transform::OneHot(e) => {
                        if interval.is_point() {
                            // Equality on the raw category index pins every
                            // indicator feature.
                            let idx = interval.lo;
                            for (f, b) in bounds[start..end].iter_mut().enumerate() {
                                let v = if idx == f as f64 { 1.0 } else { 0.0 };
                                *b = b.intersect(Interval::point(v));
                            }
                        }
                        let _ = e;
                    }
                }
            }
        }
        Ok(bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{OneHotEncoder, StandardScaler};
    use crate::tree::TreeNode;
    use raven_data::DataType;
    use raven_data::{Column, Schema};

    /// Pipeline: [age (scaled), dest (one-hot of 3)] → linear model.
    fn sample_pipeline() -> Pipeline {
        let steps = vec![
            FeatureStep::new(
                "age",
                Transform::Scale(StandardScaler {
                    mean: 40.0,
                    std: 10.0,
                }),
            ),
            FeatureStep::new(
                "dest",
                Transform::OneHot(
                    OneHotEncoder::new(vec!["JFK".into(), "LAX".into(), "SEA".into()]).unwrap(),
                ),
            ),
        ];
        let est = Estimator::Linear(
            LinearModel::new(vec![1.0, 0.5, 0.0, -0.5], 0.1, LinearKind::Regression).unwrap(),
        );
        Pipeline::new(steps, est).unwrap()
    }

    fn sample_batch() -> RecordBatch {
        let schema = Schema::from_pairs(&[("age", DataType::Float64), ("dest", DataType::Utf8)])
            .into_shared();
        RecordBatch::try_new(
            schema,
            vec![
                Column::from(vec![50.0, 30.0]),
                Column::from(vec!["LAX", "ORD"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn width_validation() {
        let steps = vec![FeatureStep::new("x", Transform::Identity)];
        let est = Estimator::Linear(
            LinearModel::new(vec![1.0, 2.0], 0.0, LinearKind::Regression).unwrap(),
        );
        assert!(Pipeline::new(steps, est).is_err());
        assert!(Pipeline::new(
            vec![],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap())
        )
        .is_err());
    }

    #[test]
    fn names_and_ranges() {
        let p = sample_pipeline();
        assert_eq!(p.n_features(), 4);
        assert_eq!(
            p.feature_names(),
            vec!["scaled(age)", "dest=JFK", "dest=LAX", "dest=SEA"]
        );
        assert_eq!(p.input_columns(), vec!["age", "dest"]);
        assert_eq!(p.step_feature_range(1).unwrap(), (1, 4));
        assert_eq!(p.feature_to_step(0).unwrap(), 0);
        assert_eq!(p.feature_to_step(3).unwrap(), 1);
        assert!(p.feature_to_step(4).is_err());
        assert!(p.step_feature_range(2).is_err());
    }

    #[test]
    fn encode_and_featurize() {
        let p = sample_pipeline();
        let b = sample_batch();
        let raw = p.encode_inputs(&b).unwrap();
        // age passthrough; LAX→1, ORD unknown→-1.
        assert_eq!(raw, vec![50.0, 1.0, 30.0, -1.0]);
        let feats = p.featurize_raw(&raw, 2).unwrap();
        assert_eq!(feats, vec![1.0, 0.0, 1.0, 0.0, -1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn predict_end_to_end() {
        let p = sample_pipeline();
        let b = sample_batch();
        let preds = p.predict(&b).unwrap();
        // row0: 1*1.0 + 0.5*1.0(=LAX? no: weights [scaled, JFK, LAX, SEA])
        // feats row0 = [1, 0, 1, 0] → 1*1 + 0.5*0 + 0*1 + (-0.5)*0 + 0.1
        assert!((preds[0] - 1.1).abs() < 1e-9);
        // feats row1 = [-1, 0, 0, 0] → -1 + 0.1
        assert!((preds[1] + 0.9).abs() < 1e-9);
        // predict_raw agrees.
        let raw = p.encode_inputs(&b).unwrap();
        assert_eq!(p.predict_raw(&raw, 2).unwrap(), preds);
    }

    #[test]
    fn used_input_columns_respects_zero_weights() {
        // Weights: scaled(age)=1, JFK=0.5, LAX=0, SEA=-0.5 → all columns used.
        let p = sample_pipeline();
        let used = p.used_input_columns().unwrap();
        assert!(used.contains("age") && used.contains("dest"));

        // Zero out everything except age → dest becomes unused.
        let est = Estimator::Linear(
            LinearModel::new(vec![1.0, 0.0, 0.0, 0.0], 0.1, LinearKind::Regression).unwrap(),
        );
        let p2 = p.with_estimator(est).unwrap();
        let used = p2.used_input_columns().unwrap();
        assert!(used.contains("age") && !used.contains("dest"));
    }

    #[test]
    fn feature_bounds_numeric_and_onehot() {
        let p = sample_pipeline();
        // age = 50 (scaled to 1.0); dest = LAX (index 1).
        let bounds = p
            .feature_bounds(&[
                ("age".into(), Interval::point(50.0)),
                ("dest".into(), Interval::point(1.0)),
            ])
            .unwrap();
        assert_eq!(bounds[0], Interval::point(1.0)); // (50-40)/10
        assert_eq!(bounds[1], Interval::point(0.0)); // JFK off
        assert_eq!(bounds[2], Interval::point(1.0)); // LAX on
        assert_eq!(bounds[3], Interval::point(0.0)); // SEA off
    }

    #[test]
    fn feature_bounds_range_constraint() {
        let p = sample_pipeline();
        let bounds = p
            .feature_bounds(&[("age".into(), Interval::at_least(60.0))])
            .unwrap();
        assert_eq!(bounds[0].lo, 2.0); // (60-40)/10
        assert_eq!(bounds[0].hi, f64::INFINITY);
        // One-hot features unconstrained by a range predicate.
        assert_eq!(bounds[1], Interval::all());
    }

    #[test]
    fn tree_pipeline_prediction() {
        // A stump over an identity feature.
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 10.0 },
                TreeNode::Leaf { value: 20.0 },
            ],
            1,
        )
        .unwrap();
        let p = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Tree(tree),
        )
        .unwrap();
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        let b = RecordBatch::try_new(schema, vec![Column::from(vec![0.5, 3.0])]).unwrap();
        assert_eq!(p.predict(&b).unwrap(), vec![10.0, 20.0]);
        assert_eq!(p.estimator().describe(), "DecisionTree(depth=1, nodes=3)");
    }
}
