//! k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used for the paper's *model clustering* optimization (§4.1, Fig. 2(b)):
//! cluster historical data offline, detect per-cluster (near-)constant
//! features, and precompile a specialized model per cluster.

use crate::error::MlError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training parameters for [`KMeans::fit`].
#[derive(Debug, Clone)]
pub struct KMeansParams {
    pub k: usize,
    pub max_iters: usize,
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams {
            k: 4,
            max_iters: 20,
            seed: 42,
        }
    }
}

/// A fitted k-means model: `k` centroids of dimension `dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<f64>, // row-major [k × dim]
    dim: usize,
}

impl KMeans {
    /// Fit on a row-major matrix `x[rows × dim]`.
    pub fn fit(x: &[f64], dim: usize, params: &KMeansParams) -> Result<Self> {
        if dim == 0 || x.is_empty() || !x.len().is_multiple_of(dim) {
            return Err(MlError::InvalidTrainingData("x/dim mismatch".into()));
        }
        let rows = x.len() / dim;
        if params.k == 0 || params.k > rows {
            return Err(MlError::InvalidTrainingData(format!(
                "k={} must be in 1..={rows}",
                params.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut centroids = kmeanspp_init(x, dim, rows, params.k, &mut rng);

        let mut assignment = vec![0usize; rows];
        for _ in 0..params.max_iters {
            // Assignment step.
            let mut changed = false;
            for r in 0..rows {
                let row = &x[r * dim..(r + 1) * dim];
                let best = nearest(&centroids, dim, row).0;
                if assignment[r] != best {
                    assignment[r] = best;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![0.0f64; params.k * dim];
            let mut counts = vec![0usize; params.k];
            for r in 0..rows {
                let c = assignment[r];
                counts[c] += 1;
                for (s, &v) in sums[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&x[r * dim..(r + 1) * dim])
                {
                    *s += v;
                }
            }
            for c in 0..params.k {
                if counts[c] == 0 {
                    continue; // keep the stale centroid for empty clusters
                }
                for (cent, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *cent = s / counts[c] as f64;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(KMeans { centroids, dim })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len() / self.dim
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Centroid `c` as a slice.
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Cluster assignment for one row.
    pub fn assign_row(&self, row: &[f64]) -> usize {
        nearest(&self.centroids, self.dim, row).0
    }

    /// Cluster assignments for a row-major batch.
    pub fn assign_batch(&self, x: &[f64], rows: usize) -> Result<Vec<usize>> {
        if x.len() != rows * self.dim {
            return Err(MlError::DimensionMismatch {
                expected: rows * self.dim,
                actual: x.len(),
            });
        }
        Ok((0..rows)
            .map(|r| self.assign_row(&x[r * self.dim..(r + 1) * self.dim]))
            .collect())
    }

    /// Group row indices by cluster.
    pub fn partition(&self, x: &[f64], rows: usize) -> Result<Vec<Vec<usize>>> {
        let assignment = self.assign_batch(x, rows)?;
        let mut groups = vec![Vec::new(); self.k()];
        for (r, &c) in assignment.iter().enumerate() {
            groups[c].push(r);
        }
        Ok(groups)
    }
}

/// Squared Euclidean nearest centroid: returns (index, distance²).
fn nearest(centroids: &[f64], dim: usize, row: &[f64]) -> (usize, f64) {
    let k = centroids.len() / dim;
    let mut best = (0usize, f64::INFINITY);
    for c in 0..k {
        let cent = &centroids[c * dim..(c + 1) * dim];
        let mut d = 0.0;
        for (a, b) in row.iter().zip(cent) {
            let diff = a - b;
            d += diff * diff;
            if d >= best.1 {
                break;
            }
        }
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ initialization: pick centers with probability proportional to
/// squared distance from the nearest existing center.
fn kmeanspp_init(x: &[f64], dim: usize, rows: usize, k: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..rows);
    centroids.extend_from_slice(&x[first * dim..(first + 1) * dim]);
    let mut dists = vec![0.0f64; rows];
    while centroids.len() < k * dim {
        let mut total = 0.0;
        for r in 0..rows {
            let d = nearest(&centroids, dim, &x[r * dim..(r + 1) * dim]).1;
            dists[r] = d;
            total += d;
        }
        let chosen = if total <= 0.0 {
            rng.gen_range(0..rows)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = rows - 1;
            for (r, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    pick = r;
                    break;
                }
            }
            pick
        };
        centroids.extend_from_slice(&x[chosen * dim..(chosen + 1) * dim]);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs around (0,0) and (10,10).
    fn blobs() -> Vec<f64> {
        let mut x = Vec::new();
        for i in 0..50 {
            let jitter = (i % 5) as f64 * 0.01;
            x.extend_from_slice(&[jitter, jitter]);
            x.extend_from_slice(&[10.0 + jitter, 10.0 - jitter]);
        }
        x
    }

    #[test]
    fn separates_blobs() {
        let x = blobs();
        let km = KMeans::fit(
            &x,
            2,
            &KMeansParams {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let a = km.assign_row(&[0.1, 0.1]);
        let b = km.assign_row(&[9.9, 9.9]);
        assert_ne!(a, b);
        // Centroids near the blob centers.
        let near_origin = km.centroid(a);
        assert!(near_origin[0] < 1.0 && near_origin[1] < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blobs();
        let p = KMeansParams {
            k: 3,
            ..Default::default()
        };
        assert_eq!(
            KMeans::fit(&x, 2, &p).unwrap(),
            KMeans::fit(&x, 2, &p).unwrap()
        );
    }

    #[test]
    fn partition_covers_all_rows() {
        let x = blobs();
        let km = KMeans::fit(
            &x,
            2,
            &KMeansParams {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let rows = x.len() / 2;
        let parts = km.partition(&x, rows).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), rows);
    }

    #[test]
    fn assign_batch_matches_rows() {
        let x = blobs();
        let km = KMeans::fit(&x, 2, &KMeansParams::default()).unwrap();
        let batch = km.assign_batch(&x, x.len() / 2).unwrap();
        for (r, &c) in batch.iter().enumerate().take(10) {
            assert_eq!(c, km.assign_row(&x[r * 2..(r + 1) * 2]));
        }
        assert!(km.assign_batch(&x, 7).is_err());
    }

    #[test]
    fn k_equals_one() {
        let x = blobs();
        let km = KMeans::fit(
            &x,
            2,
            &KMeansParams {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(km.k(), 1);
        // Single centroid = grand mean ≈ (5, 5).
        assert!((km.centroid(0)[0] - 5.0).abs() < 0.5);
    }

    #[test]
    fn validation() {
        assert!(KMeans::fit(&[], 2, &KMeansParams::default()).is_err());
        assert!(KMeans::fit(
            &[1.0, 2.0],
            2,
            &KMeansParams {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &[1.0, 2.0],
            2,
            &KMeansParams {
                k: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(&[1.0, 2.0, 3.0], 2, &KMeansParams::default()).is_err());
    }
}
