//! # raven-ml
//!
//! Classical ML models, featurizers and training for raven-rs — the
//! stand-in for scikit-learn / ML.NET in the reproduction of *"Extending
//! Relational Query Processing with ML Inference"* (CIDR 2020).
//!
//! The paper's inference queries invoke *model pipelines*: featurization
//! steps (scaling, one-hot encoding) feeding an estimator (decision tree,
//! random forest, linear/logistic regression, MLP). This crate provides:
//!
//! * reference ("framework-style") implementations of every estimator the
//!   paper evaluates, with simple trainers so the benchmark datasets can be
//!   fit from scratch ([`tree`], [`forest`], [`linear`], [`mlp`]);
//! * featurizers and the [`pipeline::Pipeline`] abstraction tying them
//!   together ([`featurize`], [`pipeline`]);
//! * k-means for the paper's *model clustering* optimization ([`kmeans`]);
//! * **NN translation** ([`translate`]): compiling a whole pipeline into a
//!   [`raven_tensor::Graph`] (GEMM-based tree scoring à la Hummingbird),
//!   the paper's §4.2 transformation that unlocks the optimized tensor
//!   runtime and the (simulated) GPU;
//! * a binary serialization format for pipelines ([`serialize`]) so models
//!   can be stored inside the database as the paper proposes.

pub mod error;
pub mod featurize;
pub mod forest;
pub mod kernel;
pub mod kmeans;
pub mod linear;
pub mod mlp;
pub mod pipeline;
pub mod serialize;
pub mod translate;
pub mod tree;

pub use error::MlError;
pub use featurize::{OneHotEncoder, StandardScaler, Transform};
pub use forest::RandomForest;
pub use kernel::{FeatureSource, FlatForest};
pub use kmeans::KMeans;
pub use linear::{LinearKind, LinearModel};
pub use mlp::Mlp;
pub use pipeline::{Estimator, FeatureStep, Pipeline};
pub use tree::DecisionTree;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;
