//! Binary serialization of model pipelines.
//!
//! The paper stores model pipelines inside the RDBMS ("INSERT INTO model
//! ..."), inheriting transactionality, versioning and auditability. This
//! module defines the byte format used by the model store:
//!
//! ```text
//! magic "RVP1" | steps | estimator
//! ```
//!
//! All integers are little-endian `u32`/`u64`; floats are `f64`; strings
//! are length-prefixed UTF-8.

use crate::error::MlError;
use crate::featurize::{OneHotEncoder, StandardScaler, Transform};
use crate::forest::RandomForest;
use crate::linear::{LinearKind, LinearModel};
use crate::mlp::{Layer, Mlp};
use crate::pipeline::{Estimator, FeatureStep, Pipeline};
use crate::tree::{DecisionTree, TreeNode};
use crate::Result;

const MAGIC: &[u8; 4] = b"RVP1";

/// Serialize a pipeline to bytes.
pub fn to_bytes(pipeline: &Pipeline) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    w_u32(&mut out, pipeline.steps().len() as u32);
    for step in pipeline.steps() {
        w_str(&mut out, &step.column);
        w_transform(&mut out, &step.transform);
    }
    w_estimator(&mut out, pipeline.estimator());
    out
}

/// Deserialize a pipeline from bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Pipeline> {
    let mut r = R { b: bytes, p: 0 };
    if r.take(4)? != MAGIC {
        return Err(MlError::Serialization("bad pipeline magic".into()));
    }
    let n_steps = r.u32()? as usize;
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        let column = r.str()?;
        let transform = r.transform()?;
        steps.push(FeatureStep::new(column, transform));
    }
    let estimator = r.estimator()?;
    Pipeline::new(steps, estimator)
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn w_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    w_u32(out, vs.len() as u32);
    for &v in vs {
        w_f64(out, v);
    }
}

fn w_transform(out: &mut Vec<u8>, t: &Transform) {
    match t {
        Transform::Identity => out.push(0),
        Transform::Scale(s) => {
            out.push(1);
            w_f64(out, s.mean);
            w_f64(out, s.std);
        }
        Transform::OneHot(e) => {
            out.push(2);
            w_u32(out, e.categories().len() as u32);
            for c in e.categories() {
                w_str(out, c);
            }
        }
    }
}

fn w_kind(out: &mut Vec<u8>, k: LinearKind) {
    out.push(match k {
        LinearKind::Regression => 0,
        LinearKind::Logistic => 1,
    });
}

fn w_tree(out: &mut Vec<u8>, t: &DecisionTree) {
    w_u32(out, t.n_features() as u32);
    w_u32(out, t.nodes().len() as u32);
    for node in t.nodes() {
        match node {
            TreeNode::Leaf { value } => {
                out.push(0);
                w_f64(out, *value);
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                out.push(1);
                w_u32(out, *feature as u32);
                w_f64(out, *threshold);
                w_u32(out, *left as u32);
                w_u32(out, *right as u32);
            }
        }
    }
}

fn w_estimator(out: &mut Vec<u8>, e: &Estimator) {
    match e {
        Estimator::Tree(t) => {
            out.push(0);
            w_tree(out, t);
        }
        Estimator::Forest(f) => {
            out.push(1);
            w_u32(out, f.trees().len() as u32);
            for t in f.trees() {
                w_tree(out, t);
            }
        }
        Estimator::Linear(m) => {
            out.push(2);
            w_kind(out, m.kind());
            w_f64(out, m.bias());
            w_f64s(out, m.weights());
        }
        Estimator::Mlp(m) => {
            out.push(3);
            w_kind(out, m.kind());
            w_u32(out, m.layers().len() as u32);
            for layer in m.layers() {
                w_u32(out, layer.n_in as u32);
                w_u32(out, layer.n_out as u32);
                w_f64s(out, &layer.w);
                w_f64s(out, &layer.b);
            }
        }
    }
}

struct R<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.p + n > self.b.len() {
            return Err(MlError::Serialization("truncated pipeline bytes".into()));
        }
        let s = &self.b[self.p..self.p + n];
        self.p += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| MlError::Serialization("invalid UTF-8".into()))
    }
    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.f64()).collect()
    }
    fn kind(&mut self) -> Result<LinearKind> {
        match self.u8()? {
            0 => Ok(LinearKind::Regression),
            1 => Ok(LinearKind::Logistic),
            other => Err(MlError::Serialization(format!("bad kind tag {other}"))),
        }
    }
    fn transform(&mut self) -> Result<Transform> {
        Ok(match self.u8()? {
            0 => Transform::Identity,
            1 => Transform::Scale(StandardScaler {
                mean: self.f64()?,
                std: self.f64()?,
            }),
            2 => {
                let n = self.u32()? as usize;
                let cats = (0..n).map(|_| self.str()).collect::<Result<Vec<_>>>()?;
                Transform::OneHot(OneHotEncoder::new(cats)?)
            }
            other => return Err(MlError::Serialization(format!("bad transform tag {other}"))),
        })
    }
    fn tree(&mut self) -> Result<DecisionTree> {
        let n_features = self.u32()? as usize;
        let n_nodes = self.u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(match self.u8()? {
                0 => TreeNode::Leaf { value: self.f64()? },
                1 => TreeNode::Split {
                    feature: self.u32()? as usize,
                    threshold: self.f64()?,
                    left: self.u32()? as usize,
                    right: self.u32()? as usize,
                },
                other => return Err(MlError::Serialization(format!("bad node tag {other}"))),
            });
        }
        DecisionTree::from_nodes(nodes, n_features)
    }
    fn estimator(&mut self) -> Result<Estimator> {
        Ok(match self.u8()? {
            0 => Estimator::Tree(self.tree()?),
            1 => {
                let n = self.u32()? as usize;
                let trees = (0..n).map(|_| self.tree()).collect::<Result<Vec<_>>>()?;
                Estimator::Forest(RandomForest::from_trees(trees)?)
            }
            2 => {
                let kind = self.kind()?;
                let bias = self.f64()?;
                let weights = self.f64s()?;
                Estimator::Linear(LinearModel::new(weights, bias, kind)?)
            }
            3 => {
                let kind = self.kind()?;
                let n = self.u32()? as usize;
                let mut layers = Vec::with_capacity(n);
                for _ in 0..n {
                    let n_in = self.u32()? as usize;
                    let n_out = self.u32()? as usize;
                    let w = self.f64s()?;
                    let b = self.f64s()?;
                    layers.push(Layer { w, b, n_in, n_out });
                }
                Estimator::Mlp(Mlp::new(layers, kind)?)
            }
            other => return Err(MlError::Serialization(format!("bad estimator tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;
    use crate::mlp::MlpParams;
    use crate::tree::TreeParams;

    fn tree_pipeline() -> Pipeline {
        let x: Vec<f64> = (0..60).map(|i| (i % 12) as f64).collect();
        let y: Vec<f64> = x.chunks(2).map(|c| (c[0] > 5.0) as i64 as f64).collect();
        let tree = DecisionTree::fit(&x, 2, &y, &TreeParams::default()).unwrap();
        Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new(
                    "b",
                    Transform::Scale(StandardScaler {
                        mean: 3.0,
                        std: 2.0,
                    }),
                ),
            ],
            Estimator::Tree(tree),
        )
        .unwrap()
    }

    #[test]
    fn tree_pipeline_roundtrip() {
        let p = tree_pipeline();
        let q = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn forest_roundtrip() {
        let x: Vec<f64> = (0..100).map(|i| (i % 9) as f64).collect();
        let y: Vec<f64> = x.chunks(2).map(|c| (c[0] > 4.0) as i64 as f64).collect();
        let f = RandomForest::fit(
            &x,
            2,
            &y,
            &ForestParams {
                n_trees: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let p = Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new("b", Transform::Identity),
            ],
            Estimator::Forest(f),
        )
        .unwrap();
        assert_eq!(from_bytes(&to_bytes(&p)).unwrap(), p);
    }

    #[test]
    fn linear_onehot_roundtrip() {
        let p = Pipeline::new(
            vec![FeatureStep::new(
                "dest",
                Transform::OneHot(OneHotEncoder::new(vec!["A".into(), "B".into()]).unwrap()),
            )],
            Estimator::Linear(
                LinearModel::new(vec![0.25, -0.75], 0.125, LinearKind::Logistic).unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(from_bytes(&to_bytes(&p)).unwrap(), p);
    }

    #[test]
    fn mlp_roundtrip() {
        let x: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let y: Vec<f64> = x.chunks(2).map(|c| (c[0] > 2.0) as i64 as f64).collect();
        let m = Mlp::fit(
            &x,
            2,
            &y,
            &MlpParams {
                epochs: 3,
                hidden: vec![4],
                ..Default::default()
            },
        )
        .unwrap();
        let p = Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new("b", Transform::Identity),
            ],
            Estimator::Mlp(m),
        )
        .unwrap();
        assert_eq!(from_bytes(&to_bytes(&p)).unwrap(), p);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let bytes = to_bytes(&tree_pipeline());
        assert!(from_bytes(b"XXXX").is_err());
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut bad = bytes.clone();
        bad[4] = 0xFF; // implausible step count
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let p = tree_pipeline();
        let q = from_bytes(&to_bytes(&p)).unwrap();
        let raw = vec![1.0, 2.0, 7.0, 0.0, 11.0, 3.0];
        assert_eq!(
            p.predict_raw(&raw, 3).unwrap(),
            q.predict_raw(&raw, 3).unwrap()
        );
    }
}
