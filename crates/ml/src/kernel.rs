//! Columnar batch kernels for trees and forests.
//!
//! The classical scoring path ([`crate::pipeline::Pipeline::predict`])
//! materializes the full featurized matrix and walks every tree
//! pointer-chasing row-at-a-time. For forest-heavy serving workloads that
//! leaves an order of magnitude on the table: the per-row walk touches
//! `TreeNode` enums scattered through an arena, and featurization expands
//! every one-hot indicator even though a tree only ever *reads* the
//! handful of features it splits on.
//!
//! [`FlatForest`] is the compiled alternative: every node packed into 16
//! contiguous bytes (pre-shifted feature slot + right-child index in one
//! `u64`, threshold beside it — a traversal step is **one aligned
//! 16-byte load** plus the feature value, with leaf values in a separate
//! cold array), renumbered in BFS order so children sit in adjacent
//! pairs, traversed *branchlessly* one pass per tree over a whole morsel
//! of rows in cache-sized row blocks, with featurization **fused into
//! the column gather** so only the features some split actually consumes
//! are ever computed — once per batch, not once per row.
//!
//! Numerical contract: the kernel is **bit-identical** to the scalar
//! path. It performs exactly the same primitive operations in exactly the
//! same order per row — `(x - mean) / std` scaling, `raw == index`
//! one-hot indicators, `x <= threshold` routing (NaN compares false and
//! therefore routes **right**, matching [`crate::tree::DecisionTree::predict_row`]),
//! and tree-order summation divided once by the tree count. The
//! differential proptest suite in `tests/kernel_differential.rs` enforces
//! this with `f64::to_bits` equality.

use crate::error::MlError;
use crate::pipeline::{Estimator, Pipeline};
use crate::tree::{DecisionTree, TreeNode};
use crate::Result;

/// How to materialize one gathered feature column from the kernel's raw
/// input matrix (fused featurization).
///
/// `step` indexes the kernel's input columns: the pipeline's raw encoded
/// inputs (`[rows × steps]`) for [`FlatForest::from_pipeline`], or the
/// already-featurized matrix for [`FlatForest::from_estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureSource {
    /// Pass the input value through unchanged (identity featurization, or
    /// an already-featurized input).
    Raw { step: usize },
    /// Z-score scale: `(x - mean) / std` — fused [`crate::featurize::StandardScaler`].
    Scaled { step: usize, mean: f64, std: f64 },
    /// One-hot indicator: `1.0` iff the raw category index equals `index`
    /// — fused [`crate::featurize::OneHotEncoder`] for a single category.
    OneHot { step: usize, index: f64 },
}

/// One flattened node: 16 bytes, so four interleaved trees' hot node sets
/// stay L1-resident and a traversal step issues two loads, not four.
///
/// `packed` holds two `u32` halves:
/// - **low**: the gathered-column slot pre-shifted by
///   [`FlatForest::BLOCK_SHIFT`] — the offset of this split's column
///   inside the per-block gather buffer, so the hot loop indexes with one
///   add and no multiply. Slots index the *gathered* columns (not the
///   model's full feature space — unused features are never
///   materialized).
/// - **high**: the **right** child's flat index. Children are laid out
///   as adjacent pairs ([`FlatForest::build`] renumbers in BFS order), so
///   the left child is always `right - 1` and the step computes
///   `right - (x <= threshold) as u32`.
///
/// Leaves carry `threshold = NaN` — every comparison is false, so the
/// step always takes the "right" branch — and `right = self`, which
/// makes them self-loop for *all* inputs, NaN included.
/// 16-byte alignment lets the x86-64 hot loop fetch a whole node with a
/// single aligned 16-byte load.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(16))]
struct FlatNode {
    packed: u64,
    threshold: f64,
}

impl PartialEq for FlatNode {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise on the threshold: leaves carry NaN, and two identical
        // layouts must compare equal (plan equality relies on it).
        self.packed == other.packed && self.threshold.to_bits() == other.threshold.to_bits()
    }
}

impl FlatNode {
    fn new(col_slot: u32, right: u32, threshold: f64) -> FlatNode {
        FlatNode {
            packed: ((right as u64) << 32) | ((col_slot << FlatForest::BLOCK_SHIFT) as u64),
            threshold,
        }
    }

    /// Pre-shifted gather-buffer offset of this split's column.
    /// (On x86-64 the hot loop unpacks the halves from its single
    /// 16-byte SIMD load instead, so these accessors only exist for the
    /// portable traversal step.)
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn col_base(self) -> u32 {
        self.packed as u32
    }

    /// Flat index of the right child (left child = right - 1).
    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn right(self) -> u32 {
        (self.packed >> 32) as u32
    }
}

/// A tree ensemble flattened into a contiguous node array for columnar
/// batch scoring.
///
/// Layout (one packed 16-byte [`FlatNode`] per node, BFS order, children
/// in adjacent pairs, one contiguous array across all trees):
///
/// ```text
///       node:        0      1      2      3      4     5     6
///   slot     u32 │   0   │  2   │ self │  1   │ self │self │self │ gathered column
///   right    u32 │   2   │  4   │ loop │  6   │ loop │loop │loop │ left = right-1
///   threshold f64│  0.5  │  35  │ NaN  │ 140  │ NaN  │ NaN │ NaN │ leaves: NaN
///                ╰───────────── 16 B each ──────────────────────╯
///   value    f64 │  0.0  │ 0.0  │ 4.0  │ 0.0  │ 1.0  │ 2.0 │ 3.0 │ (separate array)
///                ╰── tree 0 ─────────────────────────────────────╯
/// ```
///
/// Tree `t` occupies nodes `[tree_offsets[t], tree_offsets[t+1])` with its
/// root first. Leaves self-loop (NaN threshold + `right = self`), so a
/// fixed `depth(t)`-iteration loop lands every row on its leaf with no
/// per-node branch: `next = right - (x <= threshold) as u32`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    /// All nodes, tree after tree (see layout above).
    nodes: Vec<FlatNode>,
    /// Per node: leaf prediction (splits carry `0.0`, never consulted).
    /// Kept out of [`FlatNode`] — it is only read once per (row, tree),
    /// after traversal, and would double the hot nodes' footprint.
    values: Vec<f64>,
    /// Tree `t` owns nodes `[tree_offsets[t], tree_offsets[t+1])`.
    tree_offsets: Vec<u32>,
    /// Per tree: maximum root-to-leaf depth (loop trip count).
    depths: Vec<u32>,
    /// Gather spec: one entry per feature column some split reads.
    sources: Vec<FeatureSource>,
    /// Arity of the kernel's input rows (raw steps for `from_pipeline`,
    /// featurized width for `from_estimator`). Carried by the layout so a
    /// mismatched morsel is rejected with a typed error.
    n_raw: usize,
    /// Divide the tree-sum by the tree count (forest averaging)?
    average: bool,
}

impl FlatForest {
    /// Rows traversed per cache-sized block (`1 << BLOCK_SHIFT`). Nodes
    /// store their gathered-column slot pre-shifted by this, so the hot
    /// loop's column index is a single add.
    const BLOCK_SHIFT: u32 = 7;
    const BLOCK: usize = 1 << Self::BLOCK_SHIFT;

    /// Flatten a bare tree/forest estimator. The kernel input is the
    /// **featurized** matrix (`[rows × estimator.n_features()]`).
    pub fn from_estimator(estimator: &Estimator) -> Result<FlatForest> {
        let trees: Vec<&DecisionTree> = match estimator {
            Estimator::Tree(t) => vec![t],
            Estimator::Forest(f) => f.trees().iter().collect(),
            other => {
                return Err(MlError::Unsupported(format!(
                    "columnar kernel supports tree/forest estimators, not {}",
                    other.describe()
                )))
            }
        };
        let average = matches!(estimator, Estimator::Forest(_));
        let mut used: Vec<usize> = estimator.used_features().into_iter().collect();
        if used.is_empty() {
            // Degenerate all-leaf ensemble: keep one dummy source so node
            // feature slots stay in range (the traversal loop never runs).
            used.push(0);
        }
        let sources = used
            .iter()
            .map(|&f| FeatureSource::Raw { step: f })
            .collect();
        Self::build(&trees, sources, &used, estimator.n_features(), average)
    }

    /// Flatten a whole pipeline, fusing its featurization into the gather.
    /// The kernel input is the pipeline's **raw encoded** matrix
    /// (`[rows × steps]`, as produced by [`Pipeline::encode_inputs`]).
    pub fn from_pipeline(pipeline: &Pipeline) -> Result<FlatForest> {
        let estimator = pipeline.estimator();
        let trees: Vec<&DecisionTree> = match estimator {
            Estimator::Tree(t) => vec![t],
            Estimator::Forest(f) => f.trees().iter().collect(),
            other => {
                return Err(MlError::Unsupported(format!(
                    "columnar kernel supports tree/forest estimators, not {}",
                    other.describe()
                )))
            }
        };
        let average = matches!(estimator, Estimator::Forest(_));
        let mut used: Vec<usize> = estimator.used_features().into_iter().collect();
        if used.is_empty() {
            used.push(0);
        }
        let mut sources = Vec::with_capacity(used.len());
        for &f in &used {
            let step = pipeline.feature_to_step(f)?;
            let (start, _) = pipeline.step_feature_range(step)?;
            use crate::featurize::Transform;
            let src = match &pipeline.steps()[step].transform {
                Transform::Identity => FeatureSource::Raw { step },
                Transform::Scale(s) => FeatureSource::Scaled {
                    step,
                    mean: s.mean,
                    std: s.std,
                },
                Transform::OneHot(_) => FeatureSource::OneHot {
                    step,
                    index: (f - start) as f64,
                },
            };
            sources.push(src);
        }
        Self::build(&trees, sources, &used, pipeline.steps().len(), average)
    }

    /// Assemble the flat arrays. `used` maps gathered-column slot → model
    /// feature index (sorted ascending, as produced by `used_features`).
    fn build(
        trees: &[&DecisionTree],
        sources: Vec<FeatureSource>,
        used: &[usize],
        n_raw: usize,
        average: bool,
    ) -> Result<FlatForest> {
        let total_nodes: usize = trees.iter().map(|t| t.n_nodes()).sum();
        if total_nodes >= u32::MAX as usize {
            return Err(MlError::Unsupported(format!(
                "ensemble too large for flat layout: {total_nodes} nodes"
            )));
        }
        if sources.len() << Self::BLOCK_SHIFT >= u32::MAX as usize {
            return Err(MlError::Unsupported(format!(
                "too many gathered columns for flat layout: {}",
                sources.len()
            )));
        }
        let slot_of = |feature: usize| -> Result<u32> {
            used.binary_search(&feature)
                .map(|s| s as u32)
                .map_err(|_| MlError::Internal(format!("split feature {feature} not in used set")))
        };
        let mut flat = FlatForest {
            nodes: Vec::with_capacity(total_nodes),
            values: Vec::with_capacity(total_nodes),
            tree_offsets: Vec::with_capacity(trees.len() + 1),
            depths: Vec::with_capacity(trees.len()),
            sources,
            n_raw,
            average,
        };
        let mut base = 0u32;
        for tree in trees {
            flat.tree_offsets.push(base);
            flat.depths.push(tree.depth() as u32);
            let arena = tree.nodes();
            // Renumber in BFS order, appending each split's children as an
            // adjacent pair: the right child always lands at left + 1, so
            // a flat node stores only its right index.
            let mut order = Vec::with_capacity(arena.len());
            order.push(0usize);
            let mut head = 0;
            while head < order.len() && order.len() <= arena.len() {
                if let TreeNode::Split { left, right, .. } = arena[order[head]] {
                    order.push(left);
                    order.push(right);
                }
                head += 1;
            }
            if order.len() != arena.len() {
                // Fewer: unreachable arena nodes; more: a node reachable
                // twice (shared subtree or cycle). Either way the arena is
                // not the proper tree the flat layout assumes.
                return Err(MlError::Unsupported(format!(
                    "tree arena is not a proper tree: {} nodes, {} reachable",
                    arena.len(),
                    order.len().min(arena.len() + 1)
                )));
            }
            let mut pos = vec![0u32; arena.len()];
            for (p, &a) in order.iter().enumerate() {
                pos[a] = p as u32;
            }
            for (p, &a) in order.iter().enumerate() {
                match &arena[a] {
                    TreeNode::Leaf { value } => {
                        // NaN threshold: every comparison is false, so the
                        // step always picks `right`; with `right = self`
                        // the leaf self-loops for all inputs.
                        flat.nodes.push(FlatNode::new(0, base + p as u32, f64::NAN));
                        flat.values.push(*value);
                    }
                    TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        // BFS pushed left and right together, so the pair
                        // is adjacent and only `right` is stored.
                        debug_assert_eq!(pos[*right], pos[*left] + 1);
                        flat.nodes.push(FlatNode::new(
                            slot_of(*feature)?,
                            base + pos[*right],
                            *threshold,
                        ));
                        flat.values.push(0.0);
                    }
                }
            }
            base += arena.len() as u32;
        }
        flat.tree_offsets.push(base);
        Ok(flat)
    }

    /// Arity of the expected input rows (values per row in `score_raw`).
    pub fn n_raw(&self) -> usize {
        self.n_raw
    }

    /// Number of trees in the flattened ensemble.
    pub fn n_trees(&self) -> usize {
        self.depths.len()
    }

    /// Total node count across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of gathered feature columns (the fused-featurization width —
    /// at most, and usually far below, the model's full feature width).
    pub fn n_gathered(&self) -> usize {
        self.sources.len()
    }

    /// Maximum tree depth (dominates per-row traversal cost).
    pub fn max_depth(&self) -> usize {
        self.depths.iter().copied().max().unwrap_or(0) as usize
    }

    /// Summed tree depths: the branchless loop's total trip count per row
    /// (the cost model's per-row traversal unit).
    pub fn total_depth(&self) -> usize {
        self.depths.iter().map(|&d| d as usize).sum()
    }

    /// Score a row-major raw input matrix (`[rows × n_raw]`).
    ///
    /// The layout carries its arity: a morsel whose length disagrees with
    /// `rows * n_raw` is rejected with a typed [`MlError::DimensionMismatch`]
    /// (no panic, no silent truncation).
    pub fn score_raw(&self, raw: &[f64], rows: usize) -> Result<Vec<f64>> {
        if raw.len() != rows * self.n_raw {
            return Err(MlError::DimensionMismatch {
                expected: rows * self.n_raw,
                actual: raw.len(),
            });
        }
        if rows == 0 {
            return Ok(Vec::new());
        }

        // One traversal step. SAFETY (all `get_unchecked` below): node
        // indices come from `build()`, whose inputs passed
        // `DecisionTree::from_nodes` validation (children < per-tree node
        // count, so `base + pos[child]` < n_nodes; roots are tree offsets
        // < n_nodes; leaves wrap back to themselves), and whose `slot_of`
        // guarantees the pre-shifted `col_base` stays inside the
        // `sources.len() * BLOCK` buffer.
        #[inline(always)]
        unsafe fn step(nodes: &[FlatNode], buf: &[f64], r: usize, i: &mut u32) {
            // Leaves have a NaN threshold: the comparison is false for
            // every x, and right = self, so they self-loop.
            #[cfg(target_arch = "x86_64")]
            {
                // One aligned 16-byte load per node instead of separate
                // `packed`/`threshold` loads — the loop is load-port
                // bound, so this is the difference between 3 and 2 loads
                // per step. `ucomile(x, t)` is exactly `x <= t` with NaN
                // unordered → 0 → the `+1` (right) branch, bit-for-bit
                // the scalar walk's routing.
                use std::arch::x86_64::*;
                let v = _mm_load_si128(nodes.as_ptr().add(*i as usize) as *const __m128i);
                let packed = _mm_cvtsi128_si64(v) as u64;
                let x = _mm_set_sd(*buf.get_unchecked(packed as u32 as usize + r));
                let d = _mm_castsi128_pd(v);
                let le = _mm_ucomile_sd(x, _mm_unpackhi_pd(d, d)) as u32;
                *i = ((packed >> 32) as u32) - le;
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let node = *nodes.get_unchecked(*i as usize);
                let x = *buf.get_unchecked(node.col_base() as usize + r);
                *i = node.right() - u32::from(x <= node.threshold);
            }
        }

        const BLOCK: usize = FlatForest::BLOCK;
        /// Trees traversed per pass: each row iteration then carries this
        /// many independent load chains, hiding node/column load latency.
        const LANES: usize = 4;
        let n_trees = self.n_trees();
        let mut acc = vec![0.0f64; rows];
        // Per-block gather buffer: one BLOCK-long stripe per gathered
        // column, small enough to stay L1-resident across all trees.
        let mut buf = vec![0.0f64; self.sources.len() * BLOCK];
        let mut idx = [[0u32; BLOCK]; LANES];
        for base_row in (0..rows).step_by(BLOCK) {
            let len = BLOCK.min(rows - base_row);

            // Gather phase: materialize this block of each *used* feature
            // as one contiguous stripe, applying the fused transform
            // exactly as the scalar featurizer would (same expressions →
            // same bits).
            for (j, src) in self.sources.iter().enumerate() {
                let col = &mut buf[j * BLOCK..j * BLOCK + len];
                match *src {
                    FeatureSource::Raw { step } => {
                        for (r, c) in col.iter_mut().enumerate() {
                            *c = raw[(base_row + r) * self.n_raw + step];
                        }
                    }
                    FeatureSource::Scaled { step, mean, std } => {
                        for (r, c) in col.iter_mut().enumerate() {
                            *c = (raw[(base_row + r) * self.n_raw + step] - mean) / std;
                        }
                    }
                    FeatureSource::OneHot { step, index } => {
                        for (r, c) in col.iter_mut().enumerate() {
                            *c = if raw[(base_row + r) * self.n_raw + step] == index {
                                1.0
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }

            // Traversal phase: LANES trees walk the block together, every
            // row advancing one level per iteration; `!(x <= t)` maps NaN
            // to the right child, matching the scalar walk. Leaves
            // self-loop, so shallow lanes running to the group's max depth
            // just spin in place. The per-row summation order (tree 0, 1,
            // … then one division) is unchanged, so the bitwise contract
            // with the scalar path holds.
            let out = &mut acc[base_row..base_row + len];
            let mut t = 0;
            while t + LANES <= n_trees {
                let mut group_depth = 0;
                for (lane, cursors) in idx.iter_mut().enumerate() {
                    cursors[..len].fill(self.tree_offsets[t + lane]);
                    group_depth = group_depth.max(self.depths[t + lane]);
                }
                for _ in 0..group_depth {
                    for r in 0..len {
                        for cursors in idx.iter_mut() {
                            // SAFETY: see `step`.
                            unsafe { step(&self.nodes, &buf, r, &mut cursors[r]) };
                        }
                    }
                }
                for (r, o) in out.iter_mut().enumerate() {
                    for cursors in &idx {
                        // SAFETY: cursors hold in-range node indices (see `step`).
                        *o += unsafe { *self.values.get_unchecked(cursors[r] as usize) };
                    }
                }
                t += LANES;
            }
            // Remainder trees, one at a time.
            while t < n_trees {
                let cursors = &mut idx[0];
                cursors[..len].fill(self.tree_offsets[t]);
                for _ in 0..self.depths[t] {
                    for (r, i) in cursors[..len].iter_mut().enumerate() {
                        // SAFETY: see `step`.
                        unsafe { step(&self.nodes, &buf, r, i) };
                    }
                }
                for (r, o) in out.iter_mut().enumerate() {
                    // SAFETY: cursors hold in-range node indices (see `step`).
                    *o += unsafe { *self.values.get_unchecked(cursors[r] as usize) };
                }
                t += 1;
            }
        }
        if self.average {
            let k = self.n_trees() as f64;
            for a in acc.iter_mut() {
                *a /= k;
            }
        }
        Ok(acc)
    }

    /// Short human-readable description (for EXPLAIN and plan labels).
    pub fn describe(&self) -> String {
        format!(
            "FlatForest(trees={}, nodes={}, depth={}, gathered={}/{})",
            self.n_trees(),
            self.n_nodes(),
            self.max_depth(),
            self.n_gathered(),
            self.n_raw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{OneHotEncoder, StandardScaler, Transform};
    use crate::forest::{ForestParams, RandomForest};
    use crate::pipeline::FeatureStep;
    use crate::tree::tests::fig1_tree;
    use crate::tree::TreeParams;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn flat_tree_matches_scalar_walk() {
        let tree = fig1_tree();
        let flat = FlatForest::from_estimator(&Estimator::Tree(tree.clone())).unwrap();
        assert_eq!(flat.n_trees(), 1);
        assert_eq!(flat.n_nodes(), 7);
        assert_eq!(flat.n_raw(), 3);
        let rows: Vec<[f64; 3]> = vec![
            [1.0, 150.0, 30.0],
            [1.0, 120.0, 30.0],
            [0.0, 120.0, 30.0],
            [0.0, 120.0, 40.0],
        ];
        let raw: Vec<f64> = rows.iter().flatten().copied().collect();
        let got = flat.score_raw(&raw, rows.len()).unwrap();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(got[r].to_bits(), tree.predict_row(row).to_bits());
        }
    }

    #[test]
    fn nan_routes_right_like_scalar() {
        let tree = fig1_tree();
        let flat = FlatForest::from_estimator(&Estimator::Tree(tree.clone())).unwrap();
        // NaN on the root feature must take the right branch in both paths.
        let row = [f64::NAN, 120.0, 30.0];
        assert_eq!(tree.predict_row(&row), 4.0, "scalar: NaN routes right");
        let got = flat.score_raw(&row, 1).unwrap();
        assert_eq!(got[0].to_bits(), 4.0f64.to_bits());
        // NaN deeper in the tree, and ±inf.
        for row in [
            [0.0, 120.0, f64::NAN],
            [1.0, f64::NAN, 30.0],
            [f64::INFINITY, 120.0, 30.0],
            [f64::NEG_INFINITY, 120.0, 30.0],
        ] {
            let got = flat.score_raw(&row, 1).unwrap();
            assert_eq!(got[0].to_bits(), tree.predict_row(&row).to_bits());
        }
    }

    #[test]
    fn flat_forest_matches_scalar_mean() {
        let (x, y) = forest_training_data();
        let forest = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        let flat = FlatForest::from_estimator(&Estimator::Forest(forest.clone())).unwrap();
        assert_eq!(flat.n_trees(), forest.trees().len());
        let probe: Vec<f64> = vec![0.0, 0.0, 0.3, 1.1, 1.0, 0.0, 1.0, 1.0];
        let got = flat.score_raw(&probe, 4).unwrap();
        let want = forest.predict_batch(&probe, 4).unwrap();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn empty_and_single_row_batches() {
        let flat = FlatForest::from_estimator(&Estimator::Tree(fig1_tree())).unwrap();
        assert_eq!(flat.score_raw(&[], 0).unwrap(), Vec::<f64>::new());
        let one = flat.score_raw(&[0.0, 120.0, 30.0], 1).unwrap();
        assert_eq!(one, vec![1.0]);
    }

    #[test]
    fn arity_mismatch_is_typed_error() {
        let flat = FlatForest::from_estimator(&Estimator::Tree(fig1_tree())).unwrap();
        // Truncated feature row: 2 rows × 3 features needs 6 values, give 5.
        let truncated = vec![1.0, 150.0, 30.0, 0.0, 120.0];
        match flat.score_raw(&truncated, 2) {
            Err(MlError::DimensionMismatch { expected, actual }) => {
                assert_eq!(expected, 6);
                assert_eq!(actual, 5);
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_fusion_matches_reference_predict() {
        // Mixed featurization: scaled numeric + one-hot categorical feeding
        // a tree over the 4-wide featurized space.
        use crate::tree::TreeNode;
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0, // scaled(age)
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 2, // dest=LAX indicator
                    threshold: 0.5,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 9.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 5.0 },
            ],
            4,
        )
        .unwrap();
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new(
                    "age",
                    Transform::Scale(StandardScaler {
                        mean: 40.0,
                        std: 10.0,
                    }),
                ),
                FeatureStep::new(
                    "dest",
                    Transform::OneHot(
                        OneHotEncoder::new(vec!["JFK".into(), "LAX".into(), "SEA".into()]).unwrap(),
                    ),
                ),
            ],
            Estimator::Tree(tree),
        )
        .unwrap();
        let flat = FlatForest::from_pipeline(&pipeline).unwrap();
        // Only 2 of 4 features are split on → only 2 gathered columns.
        assert_eq!(flat.n_gathered(), 2);
        assert_eq!(flat.n_raw(), 2, "raw arity is steps, not features");
        // Raw encoded rows: [age, dest_index]; LAX=1, unknown=-1.
        let raw = vec![30.0, 1.0, 50.0, -1.0, 45.0, 0.0, f64::NAN, 1.0];
        let got = flat.score_raw(&raw, 4).unwrap();
        let want = pipeline.predict_raw(&raw, 4).unwrap();
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn single_leaf_tree_has_no_traversal() {
        use crate::tree::TreeNode;
        let leaf = DecisionTree::from_nodes(vec![TreeNode::Leaf { value: 2.5 }], 3).unwrap();
        let flat = FlatForest::from_estimator(&Estimator::Tree(leaf)).unwrap();
        assert_eq!(flat.max_depth(), 0);
        let got = flat.score_raw(&[9.0, 9.0, 9.0, 1.0, 1.0, 1.0], 2).unwrap();
        assert_eq!(got, vec![2.5, 2.5]);
    }

    #[test]
    fn non_tree_estimator_rejected() {
        use crate::linear::{LinearKind, LinearModel};
        let est =
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap());
        assert!(matches!(
            FlatForest::from_estimator(&est),
            Err(MlError::Unsupported(_))
        ));
    }

    #[test]
    fn fitted_tree_with_nan_training_rows() {
        // NaN feature values must not panic the fit path (total_cmp sort)
        // and the fitted tree must agree between scalar and kernel.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..32 {
            x.push(if i % 8 == 0 { f64::NAN } else { i as f64 });
            y.push(if i < 16 { 0.0 } else { 1.0 });
        }
        let tree = DecisionTree::fit(&x, 1, &y, &TreeParams::default()).unwrap();
        let flat = FlatForest::from_estimator(&Estimator::Tree(tree.clone())).unwrap();
        for probe in [0.0, 7.5, 31.0, f64::NAN, f64::INFINITY] {
            let got = flat.score_raw(&[probe], 1).unwrap();
            assert_eq!(got[0].to_bits(), tree.predict_row(&[probe]).to_bits());
        }
    }

    fn forest_training_data() -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            x.push(a as f64 + (i % 5) as f64 * 0.01);
            x.push(b as f64 + (i % 3) as f64 * 0.01);
            y.push(((a ^ b) == 1) as i64 as f64);
        }
        (x, y)
    }
}
