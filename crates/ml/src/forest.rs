//! Random forests: bagged ensembles of decision trees.

use crate::error::MlError;
use crate::tree::{DecisionTree, Interval, TreeParams};
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Training hyperparameters for [`RandomForest::fit`].
#[derive(Debug, Clone)]
pub struct ForestParams {
    pub n_trees: usize,
    pub tree: TreeParams,
    /// Features sampled per tree (`None` = all features).
    pub max_features: Option<usize>,
    /// Bootstrap sample fraction of the training rows.
    pub sample_fraction: f64,
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 10,
            tree: TreeParams::default(),
            max_features: None,
            sample_fraction: 0.8,
            seed: 42,
        }
    }
}

/// A bagged ensemble averaging tree predictions — the paper's "RF" model
/// (hospital length-of-stay, Fig. 2(d) and Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Wrap pre-built trees (all must share `n_features`).
    pub fn from_trees(trees: Vec<DecisionTree>) -> Result<Self> {
        let first = trees
            .first()
            .ok_or_else(|| MlError::InvalidTrainingData("empty forest".into()))?;
        let n_features = first.n_features();
        if trees.iter().any(|t| t.n_features() != n_features) {
            return Err(MlError::InvalidTrainingData(
                "trees disagree on feature count".into(),
            ));
        }
        Ok(RandomForest { trees, n_features })
    }

    /// Train by bootstrap aggregation.
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], params: &ForestParams) -> Result<Self> {
        if params.n_trees == 0 {
            return Err(MlError::InvalidTrainingData("n_trees must be > 0".into()));
        }
        if y.is_empty() || x.len() != y.len() * n_features {
            return Err(MlError::InvalidTrainingData("x/y shape mismatch".into()));
        }
        let rows = y.len();
        let sample = ((rows as f64 * params.sample_fraction) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            // Bootstrap rows.
            let mut bx = Vec::with_capacity(sample * n_features);
            let mut by = Vec::with_capacity(sample);
            for _ in 0..sample {
                let r = rng.gen_range(0..rows);
                bx.extend_from_slice(&x[r * n_features..(r + 1) * n_features]);
                by.push(y[r]);
            }
            // Feature bagging.
            let mut tree_params = params.tree.clone();
            if let Some(k) = params.max_features {
                let k = k.min(n_features).max(1);
                let mut all: Vec<usize> = (0..n_features).collect();
                // Partial Fisher–Yates.
                for i in 0..k {
                    let j = rng.gen_range(i..all.len());
                    all.swap(i, j);
                }
                all.truncate(k);
                tree_params.allowed_features = Some(all);
            }
            trees.push(DecisionTree::fit(&bx, n_features, &by, &tree_params)?);
        }
        RandomForest::from_trees(trees)
    }

    /// The ensemble's trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total node count across trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::n_nodes).sum()
    }

    /// Features used by any tree.
    pub fn used_features(&self) -> BTreeSet<usize> {
        self.trees.iter().flat_map(|t| t.used_features()).collect()
    }

    /// Predict one row (mean of tree predictions).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        sum / self.trees.len() as f64
    }

    /// Predict a row-major batch.
    pub fn predict_batch(&self, x: &[f64], rows: usize) -> Result<Vec<f64>> {
        if x.len() != rows * self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: rows * self.n_features,
                actual: x.len(),
            });
        }
        Ok((0..rows)
            .map(|r| self.predict_row(&x[r * self.n_features..(r + 1) * self.n_features]))
            .collect())
    }

    /// Prune every tree under the given feature bounds (predicate-based
    /// model pruning applied to ensembles).
    pub fn prune(&self, bounds: &[Interval]) -> Result<RandomForest> {
        let trees = self
            .trees
            .iter()
            .map(|t| t.prune(bounds))
            .collect::<Result<Vec<_>>>()?;
        RandomForest::from_trees(trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<f64>, Vec<f64>) {
        // y = x0 XOR x1 with 200 noisy copies; needs depth >= 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            x.push(a as f64 + (i % 5) as f64 * 0.01);
            x.push(b as f64 + (i % 3) as f64 * 0.01);
            y.push(((a ^ b) == 1) as i64 as f64);
        }
        (x, y)
    }

    #[test]
    fn fit_and_predict() {
        let (x, y) = xor_data();
        let f = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        assert_eq!(f.trees().len(), 10);
        assert!(f.predict_row(&[0.0, 1.0]) > 0.5);
        assert!(f.predict_row(&[1.0, 1.0]) < 0.5);
        assert!(f.predict_row(&[0.0, 0.0]) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let a = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        let b = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        assert_eq!(a, b);
        let c = RandomForest::fit(
            &x,
            2,
            &y,
            &ForestParams {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batch_matches_row_by_row() {
        let (x, y) = xor_data();
        let f = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        let probe = vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
        let batch = f.predict_batch(&probe, 4).unwrap();
        for r in 0..4 {
            assert_eq!(batch[r], f.predict_row(&probe[r * 2..r * 2 + 2]));
        }
        assert!(f.predict_batch(&probe, 5).is_err());
    }

    #[test]
    fn prune_agrees_on_satisfying_rows() {
        let (x, y) = xor_data();
        let f = RandomForest::fit(&x, 2, &y, &ForestParams::default()).unwrap();
        let bounds = vec![Interval::point(1.0), Interval::all()];
        let p = f.prune(&bounds).unwrap();
        assert!(p.n_nodes() <= f.n_nodes());
        for b in [0.0, 1.0] {
            let row = [1.0, b];
            assert_eq!(p.predict_row(&row), f.predict_row(&row));
        }
    }

    #[test]
    fn feature_bagging_limits_used_features() {
        let (x, y) = xor_data();
        let f = RandomForest::fit(
            &x,
            2,
            &y,
            &ForestParams {
                max_features: Some(1),
                n_trees: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for t in f.trees() {
            assert!(t.used_features().len() <= 1);
        }
    }

    #[test]
    fn validation_errors() {
        assert!(RandomForest::from_trees(vec![]).is_err());
        let (x, y) = xor_data();
        assert!(RandomForest::fit(
            &x,
            2,
            &y,
            &ForestParams {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(RandomForest::fit(&x[..4], 2, &y, &ForestParams::default()).is_err());
    }
}
