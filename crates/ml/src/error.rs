//! Error type for the ML crate.

use std::fmt;

/// Errors produced by models, featurizers and trainers.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training/inference input had the wrong shape.
    DimensionMismatch { expected: usize, actual: usize },
    /// Training data was empty or degenerate.
    InvalidTrainingData(String),
    /// A categorical value was not seen during fitting.
    UnknownCategory(String),
    /// Model (de)serialization failed.
    Serialization(String),
    /// Translation to a tensor graph failed.
    Translation(String),
    /// The requested execution strategy does not support this model.
    Unsupported(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MlError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::UnknownCategory(v) => write!(f, "unknown category: {v}"),
            MlError::Serialization(msg) => write!(f, "model serialization error: {msg}"),
            MlError::Translation(msg) => write!(f, "NN translation error: {msg}"),
            MlError::Unsupported(msg) => write!(f, "unsupported model strategy: {msg}"),
            MlError::Internal(msg) => write!(f, "internal ml error: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<raven_tensor::TensorError> for MlError {
    fn from(e: raven_tensor::TensorError) -> Self {
        MlError::Translation(e.to_string())
    }
}

impl From<raven_data::DataError> for MlError {
    fn from(e: raven_data::DataError) -> Self {
        MlError::Internal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            MlError::DimensionMismatch {
                expected: 3,
                actual: 2
            }
            .to_string(),
            "dimension mismatch: expected 3, got 2"
        );
        assert_eq!(
            MlError::UnknownCategory("XYZ".into()).to_string(),
            "unknown category: XYZ"
        );
    }

    #[test]
    fn conversions() {
        let t: MlError = raven_tensor::TensorError::NameNotFound("x".into()).into();
        assert!(matches!(t, MlError::Translation(_)));
        let d: MlError = raven_data::DataError::FieldNotFound("y".into()).into();
        assert!(matches!(d, MlError::Internal(_)));
    }
}
