//! Multi-layer perceptrons with minibatch SGD training.
//!
//! The MLP is one of the two pipelines in the paper's Fig. 3 comparison
//! (Raven vs standalone ONNX Runtime vs Raven Ext). Hidden layers use
//! ReLU; the output is linear (regression) or sigmoid (binary logistic).

use crate::error::MlError;
use crate::linear::LinearKind;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dense layer: row-major `w[in × out]` plus bias `b[out]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    pub w: Vec<f64>,
    pub b: Vec<f64>,
    pub n_in: usize,
    pub n_out: usize,
}

impl Layer {
    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.b);
        for (i, &xi) in input.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let wrow = &self.w[i * self.n_out..(i + 1) * self.n_out];
            for (o, &wv) in out.iter_mut().zip(wrow) {
                *o += xi * wv;
            }
        }
    }
}

/// Training hyperparameters for [`Mlp::fit`].
#[derive(Debug, Clone)]
pub struct MlpParams {
    pub hidden: Vec<usize>,
    pub kind: LinearKind,
    pub learning_rate: f64,
    pub epochs: usize,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![16],
            kind: LinearKind::Logistic,
            learning_rate: 0.05,
            epochs: 50,
            batch_size: 32,
            seed: 42,
        }
    }
}

/// A feed-forward network with ReLU hidden activations.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    kind: LinearKind,
}

impl Mlp {
    /// Build from explicit layers.
    pub fn new(layers: Vec<Layer>, kind: LinearKind) -> Result<Self> {
        if layers.is_empty() {
            return Err(MlError::InvalidTrainingData("no layers".into()));
        }
        for pair in layers.windows(2) {
            if pair[0].n_out != pair[1].n_in {
                return Err(MlError::DimensionMismatch {
                    expected: pair[0].n_out,
                    actual: pair[1].n_in,
                });
            }
        }
        for layer in &layers {
            if layer.w.len() != layer.n_in * layer.n_out || layer.b.len() != layer.n_out {
                return Err(MlError::InvalidTrainingData(
                    "layer weight/bias shapes inconsistent".into(),
                ));
            }
        }
        if layers.last().map(|l| l.n_out) != Some(1) {
            return Err(MlError::InvalidTrainingData(
                "output layer must have width 1".into(),
            ));
        }
        Ok(Mlp { layers, kind })
    }

    /// Train with minibatch SGD + backprop.
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], params: &MlpParams) -> Result<Self> {
        if n_features == 0 || y.is_empty() || x.len() != y.len() * n_features {
            return Err(MlError::InvalidTrainingData("x/y shape mismatch".into()));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dims = vec![n_features];
        dims.extend_from_slice(&params.hidden);
        dims.push(1);
        let mut layers: Vec<Layer> = dims
            .windows(2)
            .map(|d| {
                let (n_in, n_out) = (d[0], d[1]);
                let scale = (2.0 / n_in as f64).sqrt();
                Layer {
                    w: (0..n_in * n_out)
                        .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                        .collect(),
                    b: vec![0.0; n_out],
                    n_in,
                    n_out,
                }
            })
            .collect();

        let rows = y.len();
        let bs = params.batch_size.max(1);
        let mut order: Vec<usize> = (0..rows).collect();
        for _ in 0..params.epochs {
            // Fisher–Yates shuffle for minibatch order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(bs) {
                sgd_step(&mut layers, x, n_features, y, chunk, params);
            }
        }
        Mlp::new(layers, params.kind)
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Regression or logistic output.
    pub fn kind(&self) -> LinearKind {
        self.kind
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.layers[0].n_in
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut cur = row.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&cur, &mut next);
            if li != last {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        let score = cur[0];
        match self.kind {
            LinearKind::Regression => score,
            LinearKind::Logistic => 1.0 / (1.0 + (-score).exp()),
        }
    }

    /// Predict a row-major batch.
    pub fn predict_batch(&self, x: &[f64], rows: usize) -> Result<Vec<f64>> {
        let k = self.n_features();
        if x.len() != rows * k {
            return Err(MlError::DimensionMismatch {
                expected: rows * k,
                actual: x.len(),
            });
        }
        Ok((0..rows)
            .map(|r| self.predict_row(&x[r * k..(r + 1) * k]))
            .collect())
    }
}

/// One SGD step over a minibatch (forward + backward + update).
fn sgd_step(
    layers: &mut [Layer],
    x: &[f64],
    n_features: usize,
    y: &[f64],
    batch: &[usize],
    params: &MlpParams,
) {
    let lr = params.learning_rate / batch.len() as f64;
    for &r in batch {
        let row = &x[r * n_features..(r + 1) * n_features];
        // Forward pass, keeping activations per layer.
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(layers.len() + 1);
        activations.push(row.to_vec());
        let last = layers.len() - 1;
        for (li, layer) in layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward_into(activations.last().unwrap(), &mut out);
            if li != last {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            activations.push(out);
        }
        let score = activations.last().unwrap()[0];
        let pred = match params.kind {
            LinearKind::Regression => score,
            LinearKind::Logistic => 1.0 / (1.0 + (-score).exp()),
        };
        // dL/dscore for both squared loss (regression) and log loss
        // (logistic) reduces to (pred - y).
        let mut delta = vec![pred - y[r]];
        // Backward pass.
        for li in (0..layers.len()).rev() {
            let input = &activations[li];
            let mut next_delta = vec![0.0f64; layers[li].n_in];
            {
                let layer = &mut layers[li];
                for (i, &xi) in input.iter().enumerate() {
                    let wrow = &mut layer.w[i * layer.n_out..(i + 1) * layer.n_out];
                    for (j, (w, &d)) in wrow.iter_mut().zip(&delta).enumerate() {
                        next_delta[i] += *w * d;
                        let _ = j;
                        *w -= lr * d * xi;
                    }
                }
                for (b, &d) in layer.b.iter_mut().zip(&delta) {
                    *b -= lr * d;
                }
            }
            if li > 0 {
                // ReLU derivative w.r.t. the *input* activation of this layer.
                for (nd, &a) in next_delta.iter_mut().zip(&activations[li][..]) {
                    if a <= 0.0 {
                        *nd = 0.0;
                    }
                }
            }
            delta = next_delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = (i / 2) % 2;
            let b = i % 2;
            x.push(a as f64);
            x.push(b as f64);
            y.push(((a ^ b) == 1) as i64 as f64);
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let m = Mlp::fit(
            &x,
            2,
            &y,
            &MlpParams {
                hidden: vec![8],
                epochs: 400,
                learning_rate: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.predict_row(&[0.0, 1.0]) > 0.5);
        assert!(m.predict_row(&[1.0, 0.0]) > 0.5);
        assert!(m.predict_row(&[0.0, 0.0]) < 0.5);
        assert!(m.predict_row(&[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let p = MlpParams {
            epochs: 5,
            ..Default::default()
        };
        let a = Mlp::fit(&x, 2, &y, &p).unwrap();
        let b = Mlp::fit(&x, 2, &y, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn regression_head() {
        // y = x (identity) — trivially learnable.
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let y = x.clone();
        let m = Mlp::fit(
            &x,
            1,
            &y,
            &MlpParams {
                hidden: vec![4],
                kind: LinearKind::Regression,
                epochs: 500,
                learning_rate: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((m.predict_row(&[0.5]) - 0.5).abs() < 0.15);
    }

    #[test]
    fn batch_matches_rows() {
        let (x, y) = xor_data();
        let m = Mlp::fit(
            &x,
            2,
            &y,
            &MlpParams {
                epochs: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let probe = vec![0.0, 0.0, 1.0, 1.0];
        let out = m.predict_batch(&probe, 2).unwrap();
        assert_eq!(out[0], m.predict_row(&[0.0, 0.0]));
        assert_eq!(out[1], m.predict_row(&[1.0, 1.0]));
        assert!(m.predict_batch(&probe, 3).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(Mlp::new(vec![], LinearKind::Logistic).is_err());
        // Mismatched layer dims.
        let l1 = Layer {
            w: vec![0.0; 4],
            b: vec![0.0; 2],
            n_in: 2,
            n_out: 2,
        };
        let l2 = Layer {
            w: vec![0.0; 3],
            b: vec![0.0; 1],
            n_in: 3,
            n_out: 1,
        };
        assert!(Mlp::new(vec![l1.clone(), l2], LinearKind::Logistic).is_err());
        // Output width must be 1.
        assert!(Mlp::new(vec![l1], LinearKind::Logistic).is_err());
    }
}
