//! Linear and logistic regression with L1 (lasso) training.
//!
//! L1 regularization matters to the reproduction: the paper's
//! *model-projection pushdown* (§4.1, Fig. 2(a)) exploits the exact zero
//! weights that lasso produces — those features can be projected out of
//! both the model and the data-side query plan. The trainer here uses
//! proximal gradient descent (ISTA), whose soft-thresholding step yields
//! exact zeros, matching scikit-learn's `penalty='l1'` behaviour.

use crate::error::MlError;
use crate::Result;

/// Whether the model outputs a raw score or a logistic probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearKind {
    Regression,
    Logistic,
}

/// Training hyperparameters for [`LinearModel::fit`].
#[derive(Debug, Clone)]
pub struct LinearParams {
    pub kind: LinearKind,
    /// L1 regularization strength (0 = no regularization).
    pub l1: f64,
    pub learning_rate: f64,
    pub epochs: usize,
}

impl Default for LinearParams {
    fn default() -> Self {
        LinearParams {
            kind: LinearKind::Logistic,
            l1: 0.0,
            learning_rate: 0.1,
            epochs: 200,
        }
    }
}

/// A (generalized) linear model: `score = x·w + b`, optionally squashed
/// through a sigmoid.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
    kind: LinearKind,
}

impl LinearModel {
    /// Build from explicit parameters.
    pub fn new(weights: Vec<f64>, bias: f64, kind: LinearKind) -> Result<Self> {
        if weights.is_empty() {
            return Err(MlError::InvalidTrainingData("no weights".into()));
        }
        Ok(LinearModel {
            weights,
            bias,
            kind,
        })
    }

    /// Train with full-batch proximal gradient descent.
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], params: &LinearParams) -> Result<Self> {
        if n_features == 0 || y.is_empty() || x.len() != y.len() * n_features {
            return Err(MlError::InvalidTrainingData("x/y shape mismatch".into()));
        }
        let rows = y.len();
        let mut w = vec![0.0f64; n_features];
        let mut b = 0.0f64;
        let lr = params.learning_rate;
        let mut grad = vec![0.0f64; n_features];
        for _ in 0..params.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0f64;
            for r in 0..rows {
                let row = &x[r * n_features..(r + 1) * n_features];
                let mut score = b;
                for (wi, xi) in w.iter().zip(row) {
                    score += wi * xi;
                }
                let pred = match params.kind {
                    LinearKind::Regression => score,
                    LinearKind::Logistic => sigmoid(score),
                };
                let err = pred - y[r];
                for (g, xi) in grad.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            let inv_n = 1.0 / rows as f64;
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= lr * g * inv_n;
                // Proximal (soft-threshold) step — produces exact zeros.
                if params.l1 > 0.0 {
                    let t = lr * params.l1;
                    *wi = if *wi > t {
                        *wi - t
                    } else if *wi < -t {
                        *wi + t
                    } else {
                        0.0
                    };
                }
            }
            b -= lr * gb * inv_n;
        }
        LinearModel::new(w, b, params.kind)
    }

    /// Model weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Regression or logistic.
    pub fn kind(&self) -> LinearKind {
        self.kind
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// Fraction of weights that are exactly zero — the quantity the paper
    /// reports for its two flight-delay models (41.75% and 80.96%).
    pub fn sparsity(&self) -> f64 {
        let zeros = self.weights.iter().filter(|&&w| w == 0.0).count();
        zeros as f64 / self.weights.len() as f64
    }

    /// Indices of non-zero weights.
    pub fn nonzero_features(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Project the model onto a subset of features, dropping the rest
    /// (model-projection pushdown's model-side half). `kept` must be
    /// strictly increasing valid feature indices.
    pub fn project(&self, kept: &[usize]) -> Result<LinearModel> {
        if kept.is_empty() {
            return Err(MlError::InvalidTrainingData(
                "cannot project to zero features".into(),
            ));
        }
        let mut weights = Vec::with_capacity(kept.len());
        for &i in kept {
            if i >= self.weights.len() {
                return Err(MlError::DimensionMismatch {
                    expected: self.weights.len(),
                    actual: i,
                });
            }
            weights.push(self.weights[i]);
        }
        LinearModel::new(weights, self.bias, self.kind)
    }

    /// Fold constant feature values into the bias, producing a model over
    /// the remaining features (the linear-model half of predicate-based
    /// pruning: a filtered-out categorical column becomes a constant 0/1).
    ///
    /// `constants[i] = Some(v)` pins feature `i` to `v`.
    pub fn partial_evaluate(&self, constants: &[Option<f64>]) -> Result<(LinearModel, Vec<usize>)> {
        if constants.len() != self.weights.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.weights.len(),
                actual: constants.len(),
            });
        }
        let mut bias = self.bias;
        let mut weights = Vec::new();
        let mut kept = Vec::new();
        for (i, (&w, c)) in self.weights.iter().zip(constants).enumerate() {
            match c {
                Some(v) => bias += w * v,
                None => {
                    weights.push(w);
                    kept.push(i);
                }
            }
        }
        if weights.is_empty() {
            // Fully constant model: keep a single zero weight so the model
            // shape stays valid; callers can special-case via `kept`.
            weights.push(0.0);
        }
        Ok((LinearModel::new(weights, bias, self.kind)?, kept))
    }

    /// Raw linear score for one row. Exact-zero weights are skipped —
    /// the scoring-side benefit of L1 sparsity and constant folding
    /// (model-projection pushdown / clustering produce many zeros).
    pub fn score_row(&self, row: &[f64]) -> f64 {
        let mut s = self.bias;
        for (w, x) in self.weights.iter().zip(row) {
            if *w != 0.0 {
                s += w * x;
            }
        }
        s
    }

    /// Prediction for one row (probability for logistic models).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self.kind {
            LinearKind::Regression => self.score_row(row),
            LinearKind::Logistic => sigmoid(self.score_row(row)),
        }
    }

    /// Predict a row-major batch.
    pub fn predict_batch(&self, x: &[f64], rows: usize) -> Result<Vec<f64>> {
        let k = self.weights.len();
        if x.len() != rows * k {
            return Err(MlError::DimensionMismatch {
                expected: rows * k,
                actual: x.len(),
            });
        }
        Ok((0..rows)
            .map(|r| self.predict_row(&x[r * k..(r + 1) * k]))
            .collect())
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_data() -> (Vec<f64>, Vec<f64>) {
        // y = 1 iff x0 + x1 > 1, with x2 pure noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let a = (i % 11) as f64 / 10.0;
            let b = ((i * 7) % 11) as f64 / 10.0;
            let noise = ((i * 13) % 5) as f64 / 100.0;
            x.extend_from_slice(&[a, b, noise]);
            y.push(((a + b) > 1.0) as i64 as f64);
        }
        (x, y)
    }

    #[test]
    fn logistic_fit_separates() {
        let (x, y) = separable_data();
        let m = LinearModel::fit(
            &x,
            3,
            &y,
            &LinearParams {
                epochs: 2000,
                learning_rate: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.predict_row(&[0.9, 0.9, 0.0]) > 0.6);
        assert!(m.predict_row(&[0.1, 0.1, 0.0]) < 0.4);
    }

    #[test]
    fn l1_produces_exact_zeros() {
        let (x, y) = separable_data();
        let m = LinearModel::fit(
            &x,
            3,
            &y,
            &LinearParams {
                l1: 0.5,
                epochs: 1000,
                learning_rate: 0.3,
                ..Default::default()
            },
        )
        .unwrap();
        // The noise feature must be zeroed out by the proximal step.
        assert_eq!(m.weights()[2], 0.0);
        assert!(m.sparsity() >= 1.0 / 3.0);
        assert_eq!(
            m.nonzero_features().len(),
            3 - (m.sparsity() * 3.0) as usize
        );
    }

    #[test]
    fn regression_fit_recovers_line() {
        // y = 2x + 1
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + 1.0).collect();
        let m = LinearModel::fit(
            &x,
            1,
            &y,
            &LinearParams {
                kind: LinearKind::Regression,
                epochs: 4000,
                learning_rate: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 0.05);
        assert!((m.bias() - 1.0).abs() < 0.15);
    }

    #[test]
    fn project_drops_features() {
        let m = LinearModel::new(vec![1.0, 0.0, 3.0], 0.5, LinearKind::Regression).unwrap();
        let p = m.project(&[0, 2]).unwrap();
        assert_eq!(p.weights(), &[1.0, 3.0]);
        // Projected model on compacted rows == original on full rows.
        assert_eq!(p.predict_row(&[2.0, 4.0]), m.predict_row(&[2.0, 9.0, 4.0]));
        assert!(m.project(&[]).is_err());
        assert!(m.project(&[7]).is_err());
    }

    #[test]
    fn partial_evaluate_folds_constants() {
        let m = LinearModel::new(vec![2.0, 3.0, 4.0], 1.0, LinearKind::Regression).unwrap();
        let (pe, kept) = m.partial_evaluate(&[None, Some(10.0), None]).unwrap();
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(pe.bias(), 31.0);
        assert_eq!(
            pe.predict_row(&[1.0, 1.0]),
            m.predict_row(&[1.0, 10.0, 1.0])
        );
        // All-constant case.
        let (c, kept) = m
            .partial_evaluate(&[Some(1.0), Some(1.0), Some(1.0)])
            .unwrap();
        assert!(kept.is_empty());
        assert_eq!(c.predict_row(&[0.0]), 10.0);
        assert!(m.partial_evaluate(&[None]).is_err());
    }

    #[test]
    fn batch_matches_rows() {
        let m = LinearModel::new(vec![1.0, -1.0], 0.0, LinearKind::Logistic).unwrap();
        let x = vec![1.0, 0.0, 0.0, 1.0];
        let out = m.predict_batch(&x, 2).unwrap();
        assert_eq!(out[0], m.predict_row(&[1.0, 0.0]));
        assert_eq!(out[1], m.predict_row(&[0.0, 1.0]));
        assert!(m.predict_batch(&x, 3).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(LinearModel::new(vec![], 0.0, LinearKind::Regression).is_err());
        assert!(LinearModel::fit(&[1.0], 0, &[], &LinearParams::default()).is_err());
    }
}
