//! Decision trees: CART training, inference, and constraint-based pruning.

use crate::error::MlError;
use crate::Result;
use std::collections::BTreeSet;

/// A closed interval of values a feature can take.
///
/// Intervals drive the paper's *predicate-based model pruning* (§4.1):
/// the optimizer derives per-feature intervals from relational predicates
/// (`WHERE pregnant = 1` → `pregnant ∈ [1,1]`) or from data statistics
/// (`min(age)=36` → `age ∈ [36,∞)`) and prunes unreachable branches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// The unconstrained interval `(-∞, +∞)`.
    pub fn all() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A single point `[v, v]` (equality constraint).
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: f64) -> Interval {
        Interval {
            lo,
            hi: f64::INFINITY,
        }
    }

    /// `(-∞, hi]`.
    pub fn at_most(hi: f64) -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi,
        }
    }

    /// Intersection of two intervals (may be empty: `lo > hi`).
    pub fn intersect(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// True if no value satisfies the interval.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True if the interval pins a single value.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }
}

/// One node of an array-encoded decision tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Terminal node producing a prediction.
    Leaf { value: f64 },
    /// `x[feature] <= threshold` goes left, otherwise right.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Training hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Restrict splits to these features (used by random forests for
    /// per-tree feature bagging). `None` = all features.
    pub allowed_features: Option<Vec<usize>>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_leaf: 4,
            allowed_features: None,
        }
    }
}

/// A regression/“soft classification” decision tree.
///
/// Trained by CART with variance reduction; for binary labels the leaf
/// value is the positive-class probability, which makes the same machinery
/// serve the paper's classification workloads (hospital length-of-stay
/// buckets, flight delayed/not).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_features: usize,
}

impl DecisionTree {
    /// Build directly from nodes (root at index 0).
    pub fn from_nodes(nodes: Vec<TreeNode>, n_features: usize) -> Result<Self> {
        if nodes.is_empty() {
            return Err(MlError::InvalidTrainingData("empty tree".into()));
        }
        for node in &nodes {
            if let TreeNode::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                if *feature >= n_features {
                    return Err(MlError::DimensionMismatch {
                        expected: n_features,
                        actual: *feature,
                    });
                }
                if *left >= nodes.len() || *right >= nodes.len() {
                    return Err(MlError::Internal("child index out of range".into()));
                }
            }
        }
        Ok(DecisionTree { nodes, n_features })
    }

    /// Train with CART (variance reduction) on a row-major matrix
    /// `x[rows × n_features]` and targets `y`.
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], params: &TreeParams) -> Result<Self> {
        if n_features == 0 || y.is_empty() || x.len() != y.len() * n_features {
            return Err(MlError::InvalidTrainingData(format!(
                "x has {} values; expected rows({}) × features({})",
                x.len(),
                y.len(),
                n_features
            )));
        }
        let features: Vec<usize> = match &params.allowed_features {
            Some(fs) => {
                if let Some(&bad) = fs.iter().find(|&&f| f >= n_features) {
                    return Err(MlError::DimensionMismatch {
                        expected: n_features,
                        actual: bad,
                    });
                }
                fs.clone()
            }
            None => (0..n_features).collect(),
        };
        let mut nodes = Vec::new();
        let mut indices: Vec<usize> = (0..y.len()).collect();
        build_node(
            x,
            n_features,
            y,
            &mut indices,
            &features,
            params,
            0,
            &mut nodes,
        );
        DecisionTree::from_nodes(nodes, n_features)
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// All nodes (root at index 0).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }

    /// Number of internal (split) nodes.
    pub fn n_internal(&self) -> usize {
        self.nodes.len() - self.n_leaves()
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        go(&self.nodes, 0)
    }

    /// Features actually referenced by some split.
    pub fn used_features(&self) -> BTreeSet<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect()
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a row-major batch.
    pub fn predict_batch(&self, x: &[f64], rows: usize) -> Result<Vec<f64>> {
        if x.len() != rows * self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: rows * self.n_features,
                actual: x.len(),
            });
        }
        Ok((0..rows)
            .map(|r| self.predict_row(&x[r * self.n_features..(r + 1) * self.n_features]))
            .collect())
    }

    /// Prune branches unreachable under per-feature `bounds`
    /// (`bounds.len()` must equal `n_features`).
    ///
    /// Pruning is *safe*: a branch is removed only when provably
    /// unreachable, so the pruned tree agrees with the original on every
    /// row satisfying the bounds (the property the paper's predicate-based
    /// model pruning relies on, and which our property tests check).
    pub fn prune(&self, bounds: &[Interval]) -> Result<DecisionTree> {
        if bounds.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: bounds.len(),
            });
        }
        let mut nodes = Vec::new();
        let mut scratch = bounds.to_vec();
        let root = prune_rec(&self.nodes, 0, &mut scratch, &mut nodes);
        // `prune_rec` appends children before parents; the root ends up
        // last. Re-root by rotating it to index 0 for the standard layout.
        let mut tree = DecisionTree {
            nodes,
            n_features: self.n_features,
        };
        if root != 0 {
            tree = tree.rerooted(root);
        }
        Ok(tree)
    }

    /// Rebuild the arena so `new_root` is at index 0 (preorder layout).
    fn rerooted(&self, new_root: usize) -> DecisionTree {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        fn copy(src: &[TreeNode], i: usize, dst: &mut Vec<TreeNode>) -> usize {
            let slot = dst.len();
            dst.push(TreeNode::Leaf { value: 0.0 }); // placeholder
            match &src[i] {
                TreeNode::Leaf { value } => {
                    dst[slot] = TreeNode::Leaf { value: *value };
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let l = copy(src, *left, dst);
                    let r = copy(src, *right, dst);
                    dst[slot] = TreeNode::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: l,
                        right: r,
                    };
                }
            }
            slot
        }
        copy(&self.nodes, new_root, &mut nodes);
        DecisionTree {
            nodes,
            n_features: self.n_features,
        }
    }

    /// Express the tree as nested `CASE WHEN` SQL over the given feature
    /// expressions — the building block of the paper's *model inlining*
    /// (§4.2), which turns a tree into a scalar SQL expression that the
    /// relational engine evaluates natively.
    pub fn to_sql_case(&self, feature_exprs: &[String]) -> Result<String> {
        if feature_exprs.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: feature_exprs.len(),
            });
        }
        fn go(nodes: &[TreeNode], i: usize, exprs: &[String]) -> String {
            match &nodes[i] {
                TreeNode::Leaf { value } => format!("{value}"),
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => format!(
                    "CASE WHEN {} <= {} THEN {} ELSE {} END",
                    exprs[*feature],
                    threshold,
                    go(nodes, *left, exprs),
                    go(nodes, *right, exprs)
                ),
            }
        }
        Ok(go(&self.nodes, 0, feature_exprs))
    }
}

/// Recursive pruning: returns the index (in `out`) of the subtree root.
fn prune_rec(
    nodes: &[TreeNode],
    i: usize,
    bounds: &mut [Interval],
    out: &mut Vec<TreeNode>,
) -> usize {
    match &nodes[i] {
        TreeNode::Leaf { value } => {
            out.push(TreeNode::Leaf { value: *value });
            out.len() - 1
        }
        TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let b = bounds[*feature];
            // Left branch handles x <= threshold; reachable iff lo <= threshold.
            let left_reachable = b.lo <= *threshold;
            // Right branch handles x > threshold; reachable iff hi > threshold.
            let right_reachable = b.hi > *threshold;
            match (left_reachable, right_reachable) {
                (true, false) => {
                    let saved = bounds[*feature];
                    bounds[*feature] = Interval {
                        lo: saved.lo,
                        hi: saved.hi.min(*threshold),
                    };
                    let idx = prune_rec(nodes, *left, bounds, out);
                    bounds[*feature] = saved;
                    idx
                }
                (false, true) => {
                    let saved = bounds[*feature];
                    bounds[*feature] = Interval {
                        lo: saved.lo.max(*threshold),
                        hi: saved.hi,
                    };
                    let idx = prune_rec(nodes, *right, bounds, out);
                    bounds[*feature] = saved;
                    idx
                }
                _ => {
                    // Both reachable (or bounds empty — keep everything,
                    // pruning must stay safe).
                    let saved = bounds[*feature];
                    bounds[*feature] = Interval {
                        lo: saved.lo,
                        hi: saved.hi.min(*threshold),
                    };
                    let l = prune_rec(nodes, *left, bounds, out);
                    bounds[*feature] = Interval {
                        lo: saved.lo.max(*threshold),
                        hi: saved.hi,
                    };
                    let r = prune_rec(nodes, *right, bounds, out);
                    bounds[*feature] = saved;
                    out.push(TreeNode::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: l,
                        right: r,
                    });
                    out.len() - 1
                }
            }
        }
    }
}

/// CART node construction. Appends to `nodes` and returns the node index.
#[allow(clippy::too_many_arguments)]
// `!(xv < xn)` below is deliberate: it must also catch NaN on either
// side (a NaN midpoint would poison the threshold), which `xv >= xn`
// does not express.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn build_node(
    x: &[f64],
    n_features: usize,
    y: &[f64],
    indices: &mut [usize],
    features: &[usize],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        nodes.push(TreeNode::Leaf { value: mean });
        nodes.len() - 1
    };
    if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
        return make_leaf(nodes);
    }
    // Pure node?
    let first = y[indices[0]];
    if indices.iter().all(|&i| y[i] == first) {
        return make_leaf(nodes);
    }

    // Find the best (feature, threshold) by variance reduction.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();
    let n = indices.len() as f64;
    let parent_sse = total_sq - total_sum * total_sum / n;

    let mut order: Vec<usize> = Vec::with_capacity(indices.len());
    for &f in features {
        order.clear();
        order.extend_from_slice(indices);
        // Total order so NaN feature values cannot scramble the sort (they
        // collect at the extremes and are skipped as split candidates).
        order.sort_by(|&a, &b| x[a * n_features + f].total_cmp(&x[b * n_features + f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += y[i];
            left_sq += y[i] * y[i];
            let xv = x[i * n_features + f];
            let xn = x[order[k + 1] * n_features + f];
            if !(xv < xn) {
                // Equal values cannot be split between; a NaN on either
                // side would produce a NaN threshold — skip both cases.
                continue;
            }
            let nl = (k + 1) as f64;
            let nr = n - nl;
            if (nl as usize) < params.min_samples_leaf || (nr as usize) < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            let gain = parent_sse - sse;
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((f, (xv + xn) / 2.0, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return make_leaf(nodes);
    };

    // Partition in place.
    let mid = itertools_partition(indices, |&i| x[i * n_features + feature] <= threshold);
    if mid == 0 || mid == indices.len() {
        return make_leaf(nodes);
    }
    let slot = nodes.len();
    nodes.push(TreeNode::Leaf { value: mean }); // placeholder, replaced below
    let (left_idx, right_idx) = indices.split_at_mut(mid);
    let left = build_node(
        x,
        n_features,
        y,
        left_idx,
        features,
        params,
        depth + 1,
        nodes,
    );
    let right = build_node(
        x,
        n_features,
        y,
        right_idx,
        features,
        params,
        depth + 1,
        nodes,
    );
    nodes[slot] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

/// Stable partition: move elements satisfying `pred` to the front; returns
/// the count.
fn itertools_partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(slice.len());
    let mut rest: Vec<T> = Vec::new();
    for &v in slice.iter() {
        if pred(&v) {
            buf.push(v);
        } else {
            rest.push(v);
        }
    }
    let mid = buf.len();
    buf.extend_from_slice(&rest);
    slice.copy_from_slice(&buf);
    mid
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The running-example tree from Fig. 1 of the paper:
    /// pregnant? (yes: bp-based; no: age-based).
    /// Features: [0]=pregnant (0/1), [1]=bp, [2]=age.
    pub(crate) fn fig1_tree() -> DecisionTree {
        DecisionTree::from_nodes(
            vec![
                // 0: pregnant <= 0.5 → right branch means pregnant=1
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 4,
                },
                // 1: not pregnant: age <= 35 ?
                TreeNode::Split {
                    feature: 2,
                    threshold: 35.0,
                    left: 2,
                    right: 3,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 3.0 },
                // 4: pregnant: bp <= 140 ?
                TreeNode::Split {
                    feature: 1,
                    threshold: 140.0,
                    left: 5,
                    right: 6,
                },
                TreeNode::Leaf { value: 4.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn predict_walks_the_tree() {
        let t = fig1_tree();
        assert_eq!(t.predict_row(&[1.0, 150.0, 30.0]), 7.0);
        assert_eq!(t.predict_row(&[1.0, 120.0, 30.0]), 4.0);
        assert_eq!(t.predict_row(&[0.0, 120.0, 30.0]), 1.0);
        assert_eq!(t.predict_row(&[0.0, 120.0, 40.0]), 3.0);
    }

    #[test]
    fn structure_metrics() {
        let t = fig1_tree();
        assert_eq!(t.n_nodes(), 7);
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.n_internal(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.used_features(), BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn prune_with_equality_constraint_drops_branch() {
        // The paper's example: pregnant = 1 prunes the not-pregnant branch.
        let t = fig1_tree();
        let mut bounds = vec![Interval::all(); 3];
        bounds[0] = Interval::point(1.0);
        let p = t.prune(&bounds).unwrap();
        assert_eq!(p.n_nodes(), 3, "only the bp split remains");
        // age/gender-style features are no longer used → enables
        // model-projection pushdown downstream.
        assert_eq!(p.used_features(), BTreeSet::from([1]));
        // Agreement on all satisfying rows.
        for bp in [100.0, 140.0, 180.0] {
            for age in [20.0, 50.0] {
                let row = [1.0, bp, age];
                assert_eq!(p.predict_row(&row), t.predict_row(&row));
            }
        }
    }

    #[test]
    fn prune_with_range_constraint() {
        let t = fig1_tree();
        let mut bounds = vec![Interval::all(); 3];
        bounds[0] = Interval::point(0.0);
        bounds[2] = Interval::at_least(36.0); // stats say all patients > 35
        let p = t.prune(&bounds).unwrap();
        assert_eq!(p.n_nodes(), 1, "collapses to a single leaf");
        assert_eq!(p.predict_row(&[0.0, 120.0, 40.0]), 3.0);
    }

    #[test]
    fn prune_noop_without_constraints() {
        let t = fig1_tree();
        let p = t.prune(&[Interval::all(); 3]).unwrap();
        assert_eq!(p.n_nodes(), t.n_nodes());
        for row in [[0.0, 100.0, 20.0], [1.0, 150.0, 40.0]] {
            assert_eq!(p.predict_row(&row), t.predict_row(&row));
        }
    }

    #[test]
    fn prune_validates_bounds_len() {
        assert!(fig1_tree().prune(&[Interval::all()]).is_err());
    }

    #[test]
    fn fit_learns_a_threshold() {
        // y = 1 if x0 > 5 else 0 — a single split suffices.
        let x: Vec<f64> = (0..40).map(|i| i as f64 / 4.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| if v > 5.0 { 1.0 } else { 0.0 }).collect();
        let t = DecisionTree::fit(&x, 1, &y, &TreeParams::default()).unwrap();
        assert!(t.depth() >= 1);
        assert_eq!(t.predict_row(&[2.0]), 0.0);
        assert_eq!(t.predict_row(&[9.0]), 1.0);
    }

    #[test]
    fn fit_respects_max_depth() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let t = DecisionTree::fit(
            &x,
            1,
            &y,
            &TreeParams {
                max_depth: 2,
                min_samples_leaf: 1,
                allowed_features: None,
            },
        )
        .unwrap();
        assert!(t.depth() <= 2);
    }

    #[test]
    fn fit_respects_allowed_features() {
        // Two features; only feature 1 is allowed, and only feature 0 is
        // informative → the tree must stay a stump or split on feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..32 {
            x.push(if i < 16 { 0.0 } else { 1.0 }); // informative
            x.push(0.5); // constant
            y.push(if i < 16 { 0.0 } else { 1.0 });
        }
        let t = DecisionTree::fit(
            &x,
            2,
            &y,
            &TreeParams {
                allowed_features: Some(vec![1]),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!t.used_features().contains(&0));
    }

    #[test]
    fn fit_rejects_bad_shapes() {
        assert!(DecisionTree::fit(&[1.0, 2.0], 1, &[1.0], &TreeParams::default()).is_err());
        assert!(DecisionTree::fit(&[], 0, &[], &TreeParams::default()).is_err());
        assert!(DecisionTree::fit(
            &[1.0],
            1,
            &[1.0],
            &TreeParams {
                allowed_features: Some(vec![5]),
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn batch_matches_rows() {
        let t = fig1_tree();
        let x = vec![1.0, 150.0, 30.0, 0.0, 120.0, 40.0];
        let out = t.predict_batch(&x, 2).unwrap();
        assert_eq!(out, vec![7.0, 3.0]);
        assert!(t.predict_batch(&x, 3).is_err());
    }

    #[test]
    fn sql_case_generation() {
        let t = fig1_tree();
        let sql = t
            .to_sql_case(&["pregnant".to_string(), "bp".to_string(), "age".to_string()])
            .unwrap();
        assert!(sql.starts_with("CASE WHEN pregnant <= 0.5"));
        assert!(sql.contains("bp <= 140"));
        assert!(sql.contains("ELSE 7 END"));
        assert!(t.to_sql_case(&["a".into()]).is_err());
    }

    #[test]
    fn from_nodes_validates() {
        assert!(DecisionTree::from_nodes(vec![], 1).is_err());
        assert!(DecisionTree::from_nodes(
            vec![TreeNode::Split {
                feature: 0,
                threshold: 0.0,
                left: 5,
                right: 6
            }],
            1
        )
        .is_err());
        assert!(DecisionTree::from_nodes(
            vec![TreeNode::Split {
                feature: 3,
                threshold: 0.0,
                left: 0,
                right: 0
            }],
            1
        )
        .is_err());
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::at_least(3.0);
        let b = Interval::at_most(5.0);
        let c = a.intersect(b);
        assert_eq!(c, Interval { lo: 3.0, hi: 5.0 });
        assert!(!c.is_empty());
        assert!(Interval::point(2.0)
            .intersect(Interval::at_least(3.0))
            .is_empty());
        assert!(Interval::point(4.0).is_point());
    }
}
