//! NN translation: compiling pipelines to tensor graphs.
//!
//! This is the paper's §4.2 "NN translation": classical ML operators and
//! featurizers are rewritten into linear-algebra operators so a highly
//! optimized NN runtime (here [`raven_tensor`]) executes them with batch
//! GEMMs — and, in the paper, GPUs.
//!
//! Translation strategy per operator (mirroring Hummingbird's GEMM mode):
//!
//! * **scaler** → `Div(Sub(x, mean), std)`;
//! * **one-hot** → replicate the raw category index across `k` columns
//!   (`MatMul` with a ones row) and compare against the constant category
//!   index vector (`Equal`);
//! * **linear/logistic** → `Gemm` (+ `Sigmoid`);
//! * **decision tree** → the 3-GEMM scheme: evaluate all node conditions
//!   at once (`MatMul` + `LessOrEqual`), map condition vectors to leaf
//!   indicators (`MatMul` + `Equal` against the per-leaf true-count), then
//!   gather leaf values (`MatMul`);
//! * **random forest** → per-tree translations averaged by one final
//!   matrix–vector product;
//! * **MLP** → a chain of `Gemm`/`Relu` (+ `Sigmoid`).
//!
//! The translated graph has one input `"input"` of shape
//! `[rows × n_input_columns]` holding *raw encoded* inputs (numeric values
//! and categorical indices — exactly what
//! [`crate::pipeline::Pipeline::encode_inputs`] produces) and one output
//! `"prediction"` of shape `[rows × 1]`.

use crate::error::MlError;
use crate::featurize::Transform;
use crate::linear::{LinearKind, LinearModel};
use crate::mlp::Mlp;
use crate::pipeline::{Estimator, Pipeline};
use crate::tree::{DecisionTree, TreeNode};
use crate::Result;
use raven_tensor::{Graph, GraphBuilder, Op, Tensor};

/// Name of the translated graph's input tensor.
pub const INPUT_NAME: &str = "input";
/// Name of the translated graph's output tensor.
pub const OUTPUT_NAME: &str = "prediction";

/// Translate a full pipeline (featurization + estimator) into a graph.
pub fn translate_pipeline(pipeline: &Pipeline) -> Result<Graph> {
    let mut b = GraphBuilder::new();
    let input = b.input(INPUT_NAME);

    // Featurization: each step turns its raw input column into features.
    let mut feature_parts: Vec<String> = Vec::with_capacity(pipeline.steps().len());
    for (si, step) in pipeline.steps().iter().enumerate() {
        let col = b.node(Op::GatherCols { indices: vec![si] }, &[&input]);
        let part = match &step.transform {
            Transform::Identity => col,
            Transform::Scale(s) => {
                let mean = b.initializer(format!("mean_{si}"), Tensor::scalar(s.mean as f32));
                let std = b.initializer(format!("std_{si}"), Tensor::scalar(s.std as f32));
                let centered = b.node(Op::Sub, &[&col, &mean]);
                b.node(Op::Div, &[&centered, &std])
            }
            Transform::OneHot(e) => {
                let k = e.n_outputs();
                let ones = b.initializer(format!("ones_{si}"), Tensor::matrix(1, k, vec![1.0; k])?);
                let cats = b.initializer(
                    format!("cats_{si}"),
                    Tensor::vector((0..k).map(|i| i as f32).collect()),
                );
                let replicated = b.node(Op::MatMul, &[&col, &ones]);
                b.node(Op::Equal, &[&replicated, &cats])
            }
        };
        feature_parts.push(part);
    }
    let features = if feature_parts.len() == 1 {
        feature_parts.pop().expect("non-empty")
    } else {
        let refs: Vec<&str> = feature_parts.iter().map(String::as_str).collect();
        b.node(Op::Concat { axis: 1 }, &refs)
    };

    let prediction = translate_estimator_into(&mut b, pipeline.estimator(), &features, "est")?;
    // Expose under the canonical name.
    let identity = one(&mut b);
    b.named_node(Op::Mul, &[&prediction, &identity], OUTPUT_NAME);
    b.output(OUTPUT_NAME);
    Ok(b.build()?)
}

/// Translate a bare estimator over an already-featurized `[rows × f]`
/// input (used by micro-benchmarks and tests).
pub fn translate_estimator(estimator: &Estimator) -> Result<Graph> {
    let mut b = GraphBuilder::new();
    let input = b.input(INPUT_NAME);
    let prediction = translate_estimator_into(&mut b, estimator, &input, "est")?;
    let identity = one(&mut b);
    b.named_node(Op::Mul, &[&prediction, &identity], OUTPUT_NAME);
    b.output(OUTPUT_NAME);
    Ok(b.build()?)
}

fn one(b: &mut GraphBuilder) -> String {
    // A shared multiplicative identity used to alias a value to a fixed
    // output name (the builder's nodes are single-assignment). Repeated
    // calls overwrite the same initializer with the same value.
    b.initializer("identity_one", Tensor::scalar(1.0))
}

fn translate_estimator_into(
    b: &mut GraphBuilder,
    estimator: &Estimator,
    features: &str,
    prefix: &str,
) -> Result<String> {
    match estimator {
        Estimator::Linear(m) => translate_linear(b, m, features, prefix),
        Estimator::Tree(t) => translate_tree(b, t, features, prefix),
        Estimator::Forest(f) => {
            let mut parts = Vec::with_capacity(f.trees().len());
            for (ti, tree) in f.trees().iter().enumerate() {
                parts.push(translate_tree(
                    b,
                    tree,
                    features,
                    &format!("{prefix}_t{ti}"),
                )?);
            }
            if parts.len() == 1 {
                return Ok(parts.pop().expect("non-empty"));
            }
            let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            let stacked = b.node(Op::Concat { axis: 1 }, &refs);
            let k = parts.len();
            let avg = b.initializer(
                format!("{prefix}_avg"),
                Tensor::matrix(k, 1, vec![1.0 / k as f32; k])?,
            );
            Ok(b.node(Op::MatMul, &[&stacked, &avg]))
        }
        Estimator::Mlp(m) => translate_mlp(b, m, features, prefix),
    }
}

fn translate_linear(
    b: &mut GraphBuilder,
    m: &LinearModel,
    features: &str,
    prefix: &str,
) -> Result<String> {
    let k = m.n_features();
    let w = b.initializer(
        format!("{prefix}_w"),
        Tensor::matrix(k, 1, m.weights().iter().map(|&v| v as f32).collect())?,
    );
    let bias = b.initializer(format!("{prefix}_b"), Tensor::vector(vec![m.bias() as f32]));
    let score = b.node(
        Op::Gemm {
            alpha: 1.0,
            beta: 1.0,
        },
        &[features, &w, &bias],
    );
    Ok(match m.kind() {
        LinearKind::Regression => score,
        LinearKind::Logistic => b.node(Op::Sigmoid, &[&score]),
    })
}

fn translate_mlp(b: &mut GraphBuilder, m: &Mlp, features: &str, prefix: &str) -> Result<String> {
    let mut cur = features.to_string();
    let last = m.layers().len() - 1;
    for (li, layer) in m.layers().iter().enumerate() {
        let w = b.initializer(
            format!("{prefix}_w{li}"),
            Tensor::matrix(
                layer.n_in,
                layer.n_out,
                layer.w.iter().map(|&v| v as f32).collect(),
            )?,
        );
        let bias = b.initializer(
            format!("{prefix}_b{li}"),
            Tensor::vector(layer.b.iter().map(|&v| v as f32).collect()),
        );
        cur = b.node(
            Op::Gemm {
                alpha: 1.0,
                beta: 1.0,
            },
            &[&cur, &w, &bias],
        );
        if li != last {
            cur = b.node(Op::Relu, &[&cur]);
        }
    }
    Ok(match m.kind() {
        LinearKind::Regression => cur,
        LinearKind::Logistic => b.node(Op::Sigmoid, &[&cur]),
    })
}

/// The 3-GEMM tree translation.
fn translate_tree(
    b: &mut GraphBuilder,
    tree: &DecisionTree,
    features: &str,
    prefix: &str,
) -> Result<String> {
    let f = tree.n_features();
    // Collect internal nodes and leaves with stable indices.
    let mut internal: Vec<usize> = Vec::new();
    let mut leaves: Vec<usize> = Vec::new();
    for (i, node) in tree.nodes().iter().enumerate() {
        match node {
            TreeNode::Split { .. } => internal.push(i),
            TreeNode::Leaf { .. } => leaves.push(i),
        }
    }
    let ni = internal.len();
    let nl = leaves.len();

    if ni == 0 {
        // Degenerate single-leaf tree: constant output via Gemm with zero
        // weights (keeps the output row count tied to the input).
        let TreeNode::Leaf { value } = tree.nodes()[leaves[0]] else {
            return Err(MlError::Translation("leaf bookkeeping broken".into()));
        };
        let w = b.initializer(
            format!("{prefix}_zero"),
            Tensor::matrix(f, 1, vec![0.0; f])?,
        );
        let bias = b.initializer(
            format!("{prefix}_const"),
            Tensor::vector(vec![value as f32]),
        );
        return Ok(b.node(
            Op::Gemm {
                alpha: 1.0,
                beta: 1.0,
            },
            &[features, &w, &bias],
        ));
    }

    let internal_pos = |node: usize| internal.iter().position(|&n| n == node).expect("internal");
    let leaf_pos = |node: usize| leaves.iter().position(|&n| n == node).expect("leaf");

    // A[f × ni]: one-hot of the feature tested by each internal node.
    let mut a = vec![0.0f32; f * ni];
    // B[ni]: thresholds.
    let mut thresholds = vec![0.0f32; ni];
    for (col, &n) in internal.iter().enumerate() {
        let TreeNode::Split {
            feature, threshold, ..
        } = tree.nodes()[n]
        else {
            unreachable!()
        };
        a[feature * ni + col] = 1.0;
        thresholds[col] = threshold as f32;
    }

    // C[ni × nl]: +1 when the leaf sits in the left subtree of the node,
    // -1 for the right subtree; T[nl]: number of +1 entries per leaf;
    // V[nl × 1]: leaf values.
    let mut c = vec![0.0f32; ni * nl];
    let mut t_counts = vec![0.0f32; nl];
    let mut values = vec![0.0f32; nl];
    // DFS carrying the path (node, went_left) pairs.
    let mut stack: Vec<(usize, Vec<(usize, bool)>)> = vec![(0, Vec::new())];
    while let Some((node, path)) = stack.pop() {
        match &tree.nodes()[node] {
            TreeNode::Leaf { value } => {
                let l = leaf_pos(node);
                values[l] = *value as f32;
                for &(split, went_left) in &path {
                    let row = internal_pos(split);
                    c[row * nl + l] = if went_left { 1.0 } else { -1.0 };
                    if went_left {
                        t_counts[l] += 1.0;
                    }
                }
            }
            TreeNode::Split { left, right, .. } => {
                let mut lp = path.clone();
                lp.push((node, true));
                stack.push((*left, lp));
                let mut rp = path;
                rp.push((node, false));
                stack.push((*right, rp));
            }
        }
    }

    let a_t = b.initializer(format!("{prefix}_A"), Tensor::matrix(f, ni, a)?);
    let thr = b.initializer(format!("{prefix}_B"), Tensor::vector(thresholds));
    let c_t = b.initializer(format!("{prefix}_C"), Tensor::matrix(ni, nl, c)?);
    let t_t = b.initializer(format!("{prefix}_T"), Tensor::vector(t_counts));
    let v_t = b.initializer(format!("{prefix}_V"), Tensor::matrix(nl, 1, values)?);

    // S = X·A → node feature values; D = (S <= B) → condition bits.
    let s = b.node(Op::MatMul, &[features, &a_t]);
    let d = b.node(Op::LessOrEqual, &[&s, &thr]);
    // E = D·C; leaf indicator = (E == T).
    let e = b.node(Op::MatMul, &[&d, &c_t]);
    let ind = b.node(Op::Equal, &[&e, &t_t]);
    // Output = Indicator · V.
    Ok(b.node(Op::MatMul, &[&ind, &v_t]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{OneHotEncoder, StandardScaler};
    use crate::forest::{ForestParams, RandomForest};
    use crate::mlp::MlpParams;
    use crate::pipeline::FeatureStep;
    use crate::tree::TreeParams;
    use raven_tensor::{InferenceSession, SessionOptions};
    use std::collections::HashMap;

    fn run_graph(graph: &Graph, raw: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let session = InferenceSession::new(graph.clone(), SessionOptions::default()).unwrap();
        let input = Tensor::matrix(rows, cols, raw.iter().map(|&v| v as f32).collect()).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(INPUT_NAME.to_string(), input);
        let (outs, _) = session.run(&inputs).unwrap();
        outs[0].data().iter().map(|&v| v as f64).collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "row {i}: reference={x} translated={y}"
            );
        }
    }

    #[test]
    fn tree_translation_matches_reference() {
        let tree = crate::tree::tests::fig1_tree();
        let est = Estimator::Tree(tree.clone());
        let graph = translate_estimator(&est).unwrap();
        // Probe a grid of rows.
        let mut x = Vec::new();
        for &p in &[0.0, 1.0] {
            for &bp in &[100.0, 140.0, 141.0, 180.0] {
                for &age in &[20.0, 35.0, 36.0, 70.0] {
                    x.extend_from_slice(&[p, bp, age]);
                }
            }
        }
        let rows = x.len() / 3;
        let reference = tree.predict_batch(&x, rows).unwrap();
        let translated = run_graph(&graph, &x, rows, 3);
        assert_close(&reference, &translated, 1e-5);
    }

    #[test]
    fn trained_tree_translation_matches() {
        let x: Vec<f64> = (0..300).map(|i| ((i * 37) % 100) as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .chunks(3)
            .map(|c| if c[0] + c[1] > 10.0 { 1.0 } else { 0.0 })
            .collect();
        let tree = DecisionTree::fit(&x, 3, &y, &TreeParams::default()).unwrap();
        let graph = translate_estimator(&Estimator::Tree(tree.clone())).unwrap();
        let rows = y.len();
        assert_close(
            &tree.predict_batch(&x, rows).unwrap(),
            &run_graph(&graph, &x, rows, 3),
            1e-4,
        );
    }

    #[test]
    fn single_leaf_tree_translation() {
        let tree = DecisionTree::from_nodes(vec![TreeNode::Leaf { value: 2.5 }], 2).unwrap();
        let graph = translate_estimator(&Estimator::Tree(tree)).unwrap();
        let out = run_graph(&graph, &[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(out, vec![2.5, 2.5]);
    }

    #[test]
    fn forest_translation_matches_reference() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 10) as f64;
            let b = ((i * 7) % 10) as f64;
            x.extend_from_slice(&[a, b]);
            y.push(if a > b { 1.0 } else { 0.0 });
        }
        let forest = RandomForest::fit(
            &x,
            2,
            &y,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let graph = translate_estimator(&Estimator::Forest(forest.clone())).unwrap();
        let rows = y.len();
        assert_close(
            &forest.predict_batch(&x, rows).unwrap(),
            &run_graph(&graph, &x, rows, 2),
            1e-4,
        );
    }

    #[test]
    fn linear_translation_matches_reference() {
        let m = LinearModel::new(vec![0.5, -1.5, 2.0], 0.25, LinearKind::Logistic).unwrap();
        let graph = translate_estimator(&Estimator::Linear(m.clone())).unwrap();
        let x = vec![1.0, 0.0, 2.0, -1.0, 3.0, 0.5];
        assert_close(
            &m.predict_batch(&x, 2).unwrap(),
            &run_graph(&graph, &x, 2, 3),
            1e-5,
        );
    }

    #[test]
    fn mlp_translation_matches_reference() {
        let x: Vec<f64> = (0..60).map(|i| (i % 7) as f64 / 3.0).collect();
        let y: Vec<f64> = x.chunks(2).map(|c| (c[0] > c[1]) as i64 as f64).collect();
        let m = Mlp::fit(
            &x,
            2,
            &y,
            &MlpParams {
                epochs: 10,
                hidden: vec![5, 3],
                ..Default::default()
            },
        )
        .unwrap();
        let graph = translate_estimator(&Estimator::Mlp(m.clone())).unwrap();
        let rows = y.len();
        assert_close(
            &m.predict_batch(&x, rows).unwrap(),
            &run_graph(&graph, &x, rows, 2),
            1e-4,
        );
    }

    #[test]
    fn full_pipeline_translation_matches_reference() {
        use raven_data::{Column, DataType, RecordBatch, Schema};
        // Pipeline: scaled(age), onehot(dest,3) → logistic regression.
        let steps = vec![
            FeatureStep::new(
                "age",
                Transform::Scale(StandardScaler {
                    mean: 40.0,
                    std: 10.0,
                }),
            ),
            FeatureStep::new(
                "dest",
                Transform::OneHot(
                    OneHotEncoder::new(vec!["JFK".into(), "LAX".into(), "SEA".into()]).unwrap(),
                ),
            ),
        ];
        let est = Estimator::Linear(
            LinearModel::new(vec![0.8, 0.3, -0.2, 0.1], -0.05, LinearKind::Logistic).unwrap(),
        );
        let pipeline = Pipeline::new(steps, est).unwrap();

        let schema = Schema::from_pairs(&[("age", DataType::Float64), ("dest", DataType::Utf8)])
            .into_shared();
        let batch = RecordBatch::try_new(
            schema,
            vec![
                Column::from(vec![25.0, 40.0, 61.0, 33.0]),
                Column::from(vec!["LAX", "JFK", "ORD", "SEA"]),
            ],
        )
        .unwrap();

        let reference = pipeline.predict(&batch).unwrap();
        let graph = translate_pipeline(&pipeline).unwrap();
        let raw = pipeline.encode_inputs(&batch).unwrap();
        let translated = run_graph(&graph, &raw, 4, 2);
        assert_close(&reference, &translated, 1e-5);
    }

    #[test]
    fn pipeline_graph_has_canonical_io() {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let g = translate_pipeline(&pipeline).unwrap();
        assert_eq!(g.inputs, vec![INPUT_NAME.to_string()]);
        assert_eq!(g.outputs, vec![OUTPUT_NAME.to_string()]);
    }
}
