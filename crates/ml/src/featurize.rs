//! Featurizers: scaling and one-hot encoding.
//!
//! These are the paper's "data featurizers" (MLD operators, §3.1). A
//! [`Transform`] consumes one raw input column and produces one or more
//! numeric features; [`crate::pipeline::Pipeline`] strings transforms
//! together in front of an estimator.

use crate::error::MlError;
use crate::Result;
use raven_data::{Column, Value};

/// Z-score scaler for one numeric column: `(x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    pub mean: f64,
    pub std: f64,
}

impl StandardScaler {
    /// Fit from values. A constant column gets `std = 1` to avoid division
    /// by zero (matching scikit-learn).
    pub fn fit(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(MlError::InvalidTrainingData("empty column".into()));
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = if var > 0.0 { var.sqrt() } else { 1.0 };
        Ok(StandardScaler { mean, std })
    }

    /// Scale one value.
    pub fn transform_value(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Invert the scaling.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

/// One-hot encoder for a categorical column.
///
/// Unknown categories at inference time encode to the all-zero vector
/// (scikit-learn's `handle_unknown='ignore'`), which is also what makes
/// the paper's categorical predicate-based pruning sound: a filter
/// `dest = 'JFK'` pins the JFK indicator to 1 and every other indicator
/// to 0.
#[derive(Debug, Clone, PartialEq)]
pub struct OneHotEncoder {
    categories: Vec<String>,
}

impl OneHotEncoder {
    /// Build with explicit categories (order defines feature order).
    pub fn new(categories: Vec<String>) -> Result<Self> {
        if categories.is_empty() {
            return Err(MlError::InvalidTrainingData("no categories".into()));
        }
        Ok(OneHotEncoder { categories })
    }

    /// Fit from observed values (categories sorted for determinism).
    pub fn fit(values: &[String]) -> Result<Self> {
        let mut cats: Vec<String> = values.to_vec();
        cats.sort();
        cats.dedup();
        OneHotEncoder::new(cats)
    }

    /// The category list.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Number of output features.
    pub fn n_outputs(&self) -> usize {
        self.categories.len()
    }

    /// Index of a category, if known.
    pub fn index_of(&self, value: &str) -> Option<usize> {
        self.categories.iter().position(|c| c == value)
    }

    /// Encode one value as a category index; unknown values become -1
    /// (which one-hots to all zeros).
    pub fn encode_index(&self, value: &str) -> f64 {
        self.index_of(value).map(|i| i as f64).unwrap_or(-1.0)
    }

    /// One-hot encode one raw index into `out` (appends `n_outputs` values).
    pub fn onehot_from_index(&self, index: f64, out: &mut Vec<f64>) {
        for i in 0..self.categories.len() {
            out.push(if index == i as f64 { 1.0 } else { 0.0 });
        }
    }
}

/// A single-column transform.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Pass the numeric value through unchanged.
    Identity,
    /// Z-score scale a numeric value.
    Scale(StandardScaler),
    /// One-hot encode a categorical value.
    OneHot(OneHotEncoder),
}

impl Transform {
    /// Number of features this transform produces.
    pub fn n_outputs(&self) -> usize {
        match self {
            Transform::Identity | Transform::Scale(_) => 1,
            Transform::OneHot(e) => e.n_outputs(),
        }
    }

    /// Names of the produced features, derived from the input column name.
    pub fn output_names(&self, column: &str) -> Vec<String> {
        match self {
            Transform::Identity => vec![column.to_string()],
            Transform::Scale(_) => vec![format!("scaled({column})")],
            Transform::OneHot(e) => e
                .categories()
                .iter()
                .map(|c| format!("{column}={c}"))
                .collect(),
        }
    }

    /// Encode a raw data column into per-row *raw model inputs* (numeric
    /// passthrough; categorical → category index). One value per row.
    pub fn encode_raw(&self, column: &Column) -> Result<Vec<f64>> {
        match self {
            Transform::Identity | Transform::Scale(_) => Ok(column.to_f64_vec()?),
            Transform::OneHot(e) => match column {
                Column::Utf8(values) => Ok(values.iter().map(|v| e.encode_index(v)).collect()),
                // Numeric categorical columns: the value itself must be a
                // category; map through its string form.
                other => {
                    let n = other.len();
                    let mut out = Vec::with_capacity(n);
                    for i in 0..n {
                        let v = other.get(i)?;
                        let s = match v {
                            Value::Utf8(s) => s,
                            Value::Int64(x) => x.to_string(),
                            Value::Float64(x) => x.to_string(),
                            Value::Bool(b) => b.to_string(),
                        };
                        out.push(e.encode_index(&s));
                    }
                    Ok(out)
                }
            },
        }
    }

    /// Featurize one raw encoded value, appending to `out`.
    pub fn featurize_value(&self, raw: f64, out: &mut Vec<f64>) {
        match self {
            Transform::Identity => out.push(raw),
            Transform::Scale(s) => out.push(s.transform_value(raw)),
            Transform::OneHot(e) => e.onehot_from_index(raw, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_fit_transform_inverse() {
        let s = StandardScaler::fit(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.mean, 4.0);
        assert!((s.transform_value(4.0)).abs() < 1e-12);
        assert!((s.inverse(s.transform_value(2.0)) - 2.0).abs() < 1e-12);
        assert!(StandardScaler::fit(&[]).is_err());
    }

    #[test]
    fn scaler_constant_column() {
        let s = StandardScaler::fit(&[5.0, 5.0]).unwrap();
        assert_eq!(s.std, 1.0);
        assert_eq!(s.transform_value(5.0), 0.0);
    }

    #[test]
    fn onehot_fit_sorted_dedup() {
        let e = OneHotEncoder::fit(&["b".into(), "a".into(), "b".into()]).unwrap();
        assert_eq!(e.categories(), &["a".to_string(), "b".to_string()]);
        assert_eq!(e.index_of("b"), Some(1));
        assert_eq!(e.index_of("zzz"), None);
        assert_eq!(e.encode_index("zzz"), -1.0);
    }

    #[test]
    fn onehot_unknown_is_all_zero() {
        let e = OneHotEncoder::new(vec!["x".into(), "y".into()]).unwrap();
        let mut out = Vec::new();
        e.onehot_from_index(e.encode_index("nope"), &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        out.clear();
        e.onehot_from_index(e.encode_index("y"), &mut out);
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn transform_outputs_and_names() {
        let t = Transform::OneHot(OneHotEncoder::new(vec!["JFK".into(), "LAX".into()]).unwrap());
        assert_eq!(t.n_outputs(), 2);
        assert_eq!(t.output_names("dest"), vec!["dest=JFK", "dest=LAX"]);
        assert_eq!(Transform::Identity.output_names("age"), vec!["age"]);
        assert_eq!(
            Transform::Scale(StandardScaler {
                mean: 0.0,
                std: 1.0
            })
            .output_names("bp"),
            vec!["scaled(bp)"]
        );
    }

    #[test]
    fn encode_raw_columns() {
        let t = Transform::Identity;
        assert_eq!(
            t.encode_raw(&Column::from(vec![1i64, 2])).unwrap(),
            vec![1.0, 2.0]
        );
        let oh = Transform::OneHot(OneHotEncoder::new(vec!["a".into(), "b".into()]).unwrap());
        assert_eq!(
            oh.encode_raw(&Column::from(vec!["b", "a", "zzz"])).unwrap(),
            vec![1.0, 0.0, -1.0]
        );
        // Integer categorical column goes through string form.
        let ohi = Transform::OneHot(OneHotEncoder::new(vec!["1".into(), "2".into()]).unwrap());
        assert_eq!(
            ohi.encode_raw(&Column::from(vec![2i64, 9])).unwrap(),
            vec![1.0, -1.0]
        );
        // Strings cannot pass through Identity.
        assert!(Transform::Identity
            .encode_raw(&Column::from(vec!["x"]))
            .is_err());
    }

    #[test]
    fn featurize_values() {
        let mut out = Vec::new();
        Transform::Identity.featurize_value(3.0, &mut out);
        Transform::Scale(StandardScaler {
            mean: 1.0,
            std: 2.0,
        })
        .featurize_value(3.0, &mut out);
        assert_eq!(out, vec![3.0, 1.0]);
    }

    #[test]
    fn onehot_empty_categories_rejected() {
        assert!(OneHotEncoder::new(vec![]).is_err());
    }
}
