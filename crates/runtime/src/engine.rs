//! The query engine: catalog + executor + scorer in one place.

use crate::scorer::{RavenScorer, ScorerConfig};
use crate::Result;
use raven_data::{Catalog, Table};
use raven_ir::Plan;
use raven_relational::{ExecOptions, Executor};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing and cache information for one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionStats {
    pub wall: Duration,
    pub rows: usize,
    /// Inference-session cache (hits, misses) accumulated on the engine.
    pub session_cache: (u64, u64),
}

/// Executes optimized plans with Raven's scorer.
///
/// Owns its catalog and scorer behind `Arc`s (no borrow lifetimes), so an
/// engine can be shared across worker threads or embedded in long-lived
/// services; the scorer's inference-session cache is shared by every
/// clone-holder.
pub struct QueryEngine {
    catalog: Arc<Catalog>,
    scorer: Arc<RavenScorer>,
    exec_options: ExecOptions,
}

impl QueryEngine {
    pub fn new(catalog: impl Into<Arc<Catalog>>, config: ScorerConfig) -> Self {
        QueryEngine {
            catalog: catalog.into(),
            scorer: Arc::new(RavenScorer::new(config)),
            exec_options: ExecOptions::default(),
        }
    }

    /// An engine over existing shared state (the serving layer's path:
    /// catalog and session cache survive across many engines/requests).
    pub fn from_shared(catalog: Arc<Catalog>, scorer: Arc<RavenScorer>) -> Self {
        QueryEngine {
            catalog,
            scorer,
            exec_options: ExecOptions::default(),
        }
    }

    /// Builder-style executor options override.
    pub fn with_exec_options(mut self, options: ExecOptions) -> Self {
        self.exec_options = options;
        self
    }

    /// The scorer (for cache management).
    pub fn scorer(&self) -> &RavenScorer {
        &self.scorer
    }

    /// Shared handle to the scorer.
    pub fn scorer_shared(&self) -> Arc<RavenScorer> {
        self.scorer.clone()
    }

    /// Shared handle to the catalog.
    pub fn catalog_shared(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// Execute a plan, returning the result table and stats.
    pub fn run(&self, plan: &Plan) -> Result<(Table, ExecutionStats)> {
        let start = Instant::now();
        let executor = Executor::new(&self.catalog, self.scorer.as_ref(), self.exec_options);
        let table = executor.execute(plan)?;
        let stats = ExecutionStats {
            wall: start.elapsed(),
            rows: table.num_rows(),
            session_cache: self.scorer.cache_stats(),
        };
        Ok((table, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ir::{Device, ExecutionMode, Expr, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::translate::translate_pipeline;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn catalog(n: usize) -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                vec![Column::Float64((0..n).map(|i| (i % 100) as f64).collect())],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn runs_inference_query_end_to_end() {
        let cat = Arc::new(catalog(1000));
        let engine = QueryEngine::new(cat.clone(), ScorerConfig::instant());
        let graph = Arc::new(translate_pipeline(&pipeline()).unwrap());
        let plan = Plan::Filter {
            input: Box::new(Plan::TensorPredict {
                input: Box::new(Plan::Scan {
                    table: "t".into(),
                    schema: cat.table("t").unwrap().schema().clone(),
                }),
                model: ModelRef {
                    name: "m".into(),
                    pipeline: Arc::new(pipeline()),
                },
                graph,
                output: "score".into(),
                device: Device::CpuSingle,
            }),
            predicate: Expr::col("score").gt(Expr::lit(50i64)),
        };
        let (table, stats) = engine.run(&plan).unwrap();
        assert_eq!(table.num_rows(), 490); // x in 51..100 per 100-cycle
        assert_eq!(stats.rows, 490);
        assert!(stats.wall > Duration::ZERO);

        // Re-running hits the session cache.
        let (_, stats2) = engine.run(&plan).unwrap();
        assert!(stats2.session_cache.0 >= 1);
    }

    #[test]
    fn out_of_process_query_executes() {
        let cat = Arc::new(catalog(50));
        let engine = QueryEngine::new(cat.clone(), ScorerConfig::instant());
        let plan = Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                schema: cat.table("t").unwrap().schema().clone(),
            }),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline()),
            },
            output: "score".into(),
            mode: ExecutionMode::OutOfProcess,
        };
        let (table, _) = engine.run(&plan).unwrap();
        assert_eq!(table.num_rows(), 50);
        assert_eq!(
            table.column_by_name("score").unwrap().f64_values().unwrap()[7],
            7.0
        );
    }
}
