//! The Runtime Code Generator: optimized IR → SQL text.
//!
//! The paper's pipeline ends with a code generator that "builds a new SQL
//! query that corresponds to the optimized IR" and hands it to the
//! integrated engine. This module renders any plan back to SQL:
//! inlined models appear as plain `CASE`/arithmetic expressions (the
//! UDF-inlining outcome), remaining model operators render as SQL Server's
//! `PREDICT(MODEL = ..., DATA = ...)`, and the tensor/clustered variants
//! carry comment annotations naming their engine.

use raven_ir::{Expr, Plan};

/// Render a plan as a SQL query.
pub fn to_sql(plan: &Plan) -> String {
    render(plan)
}

fn render(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("SELECT * FROM {table}"),
        Plan::Filter { input, predicate } => {
            format!(
                "SELECT * FROM ({}) AS _f WHERE {}",
                render(input),
                render_expr(predicate)
            )
        }
        Plan::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, name)| {
                    let rendered = render_expr(e);
                    if &rendered == name {
                        rendered
                    } else {
                        format!("{rendered} AS {}", quote_name(name))
                    }
                })
                .collect();
            format!("SELECT {} FROM ({}) AS _p", cols.join(", "), render(input))
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            ..
        } => format!(
            "SELECT * FROM ({}) AS _l JOIN ({}) AS _r ON {} = {}",
            render(left),
            render(right),
            quote_name(left_key),
            quote_name(right_key)
        ),
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut cols: Vec<String> = group_by.iter().map(|g| quote_name(g)).collect();
            for (f, c, out) in aggregates {
                cols.push(format!(
                    "{}({}) AS {}",
                    f.sql(),
                    quote_name(c),
                    quote_name(out)
                ));
            }
            let group = if group_by.is_empty() {
                String::new()
            } else {
                format!(
                    " GROUP BY {}",
                    group_by
                        .iter()
                        .map(|g| quote_name(g))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            format!(
                "SELECT {} FROM ({}) AS _a{group}",
                cols.join(", "),
                render(input)
            )
        }
        Plan::Union { inputs } => inputs
            .iter()
            .map(render)
            .collect::<Vec<_>>()
            .join(" UNION ALL "),
        Plan::Sort {
            input,
            column,
            descending,
        } => format!(
            "SELECT * FROM ({}) AS _s ORDER BY {} {}",
            render(input),
            quote_name(column),
            if *descending { "DESC" } else { "ASC" }
        ),
        Plan::Limit { input, fetch } => {
            format!("SELECT * FROM ({}) AS _t LIMIT {fetch}", render(input))
        }
        Plan::Predict {
            input,
            model,
            output,
            mode,
        } => {
            let mode_comment = match mode {
                raven_ir::ExecutionMode::InProcess => "",
                raven_ir::ExecutionMode::OutOfProcess => " /* via sp_execute_external_script */",
                raven_ir::ExecutionMode::Container => " /* via containerized REST */",
            };
            format!(
                "SELECT *, _pred AS {} FROM PREDICT(MODEL = '{}', DATA = ({}) AS _d) \
                 WITH (_pred FLOAT){}",
                quote_name(output),
                model.name,
                render(input),
                mode_comment
            )
        }
        Plan::TensorPredict {
            input,
            model,
            output,
            device,
            ..
        } => format!(
            "SELECT *, _pred AS {} FROM PREDICT(MODEL = '{}', DATA = ({}) AS _d) \
             WITH (_pred FLOAT) /* NN-translated, tensor runtime on {device:?} */",
            quote_name(output),
            model.name,
            render(input)
        ),
        Plan::KernelPredict {
            input,
            model,
            flat,
            output,
        } => format!(
            "SELECT *, _pred AS {} FROM PREDICT(MODEL = '{}', DATA = ({}) AS _d) \
             WITH (_pred FLOAT) /* columnar kernel: {} */",
            quote_name(output),
            model.name,
            render(input),
            flat.describe()
        ),
        Plan::ClusteredPredict {
            input,
            model,
            cluster_models,
            output,
            ..
        } => format!(
            "SELECT *, _pred AS {} FROM PREDICT(MODEL = '{}', DATA = ({}) AS _d) \
             WITH (_pred FLOAT) /* clustered: {} specialized models */",
            quote_name(output),
            model.name,
            render(input),
            cluster_models.len()
        ),
        Plan::Udf {
            input,
            name,
            output,
            ..
        } => format!(
            "SELECT *, {}(*) AS {} FROM ({}) AS _u",
            name,
            quote_name(output),
            render(input)
        ),
    }
}

/// Names used as aliases must be a single identifier; qualified names
/// (with dots) are double-quoted, which the parser accepts back.
fn quote_name(name: &str) -> String {
    if name.contains('.') {
        format!("\"{name}\"")
    } else {
        name.to_string()
    }
}

fn render_expr(expr: &Expr) -> String {
    expr.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{DataType, Schema};
    use raven_ir::{ExecutionMode, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn scan() -> Plan {
        Plan::Scan {
            table: "patients".into(),
            schema: Schema::from_pairs(&[("bp", DataType::Float64)]).into_shared(),
        }
    }

    #[test]
    fn filter_and_project() {
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(scan()),
                predicate: Expr::col("bp").gt(Expr::lit(140i64)),
            }),
            exprs: vec![(Expr::col("bp"), "bp".into())],
        };
        let sql = to_sql(&plan);
        assert!(sql.contains("WHERE (bp > 140)"));
        assert!(sql.starts_with("SELECT bp FROM"));
    }

    #[test]
    fn predict_renders_sqlserver_syntax() {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("bp", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(scan()),
            model: ModelRef {
                name: "stay".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "p.stay".into(),
            mode: ExecutionMode::OutOfProcess,
        };
        let sql = to_sql(&plan);
        assert!(sql.contains("PREDICT(MODEL = 'stay'"));
        assert!(sql.contains("sp_execute_external_script"));
    }

    #[test]
    fn inlined_case_renders_directly() {
        let plan = Plan::Project {
            input: Box::new(scan()),
            exprs: vec![(
                Expr::Case {
                    branches: vec![(Expr::col("bp").lt_eq(Expr::lit(140i64)), Expr::lit(2.0f64))],
                    else_expr: Box::new(Expr::lit(7.0f64)),
                },
                "stay".into(),
            )],
        };
        let sql = to_sql(&plan);
        assert!(sql.contains("CASE WHEN (bp <= 140) THEN 2 ELSE 7 END AS stay"));
    }

    #[test]
    fn aggregate_and_sort_render() {
        let plan = Plan::Sort {
            input: Box::new(Plan::Aggregate {
                input: Box::new(scan()),
                group_by: vec!["bp".into()],
                aggregates: vec![(raven_ir::AggFunc::Count, "bp".into(), "n".into())],
            }),
            column: "n".into(),
            descending: true,
        };
        let sql = to_sql(&plan);
        assert!(sql.contains("GROUP BY bp"));
        assert!(sql.contains("ORDER BY n DESC"));
        assert!(sql.contains("COUNT(bp) AS n"));
    }

    #[test]
    fn generated_simple_query_reparses() {
        // Round-trip: plan → SQL → parse again.
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col("bp").gt(Expr::lit(120i64)),
        };
        let sql = to_sql(&plan);
        assert!(raven_sql::parse(&sql).is_ok(), "unparseable SQL: {sql}");
    }
}
