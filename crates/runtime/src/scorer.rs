//! The Raven scorer: dispatches model operators to their engines.

use crate::external::{
    score_container_cancellable, score_out_of_process_cancellable, ContainerConfig, ExternalConfig,
};
use crate::Result;
use raven_data::RecordBatch;
use raven_ir::{Device, ExecutionMode, Plan};
use raven_relational::{CancelToken, ExecError, Scorer};
use raven_tensor::{
    Device as TensorDevice, InferenceSession, SessionCache, SessionOptions, Tensor,
};
use std::sync::Arc;

/// Scorer configuration.
#[derive(Debug, Clone, Default)]
pub struct ScorerConfig {
    /// Out-of-process runtime costs (Raven Ext).
    pub external: ExternalConfig,
    /// Container runtime costs.
    pub container: ContainerConfig,
    /// Rows per tensor-runtime execution batch (0 = whole morsel at once).
    /// The paper gains ~an order of magnitude from batch inference
    /// (§5 observation v); set to 1 to reproduce per-tuple scoring.
    pub tensor_batch_size: usize,
}

impl ScorerConfig {
    /// Zero-latency externals (unit tests).
    pub fn instant() -> Self {
        ScorerConfig {
            external: ExternalConfig::instant(),
            container: ContainerConfig::instant(),
            tensor_batch_size: 0,
        }
    }
}

/// Implements [`raven_relational::Scorer`] for all of Raven's model
/// operators, owning the inference-session cache that reproduces SQL
/// Server's model/session caching (Fig. 3, observation ii).
pub struct RavenScorer {
    config: ScorerConfig,
    sessions: SessionCache,
    /// Graph fingerprints memoized by `Arc` pointer identity: optimizer
    /// rewrites (pruning, projection pushdown) produce *variants* of a
    /// stored model that must not collide in the session cache.
    fingerprints: parking_lot::Mutex<std::collections::HashMap<usize, u64>>,
}

impl RavenScorer {
    pub fn new(config: ScorerConfig) -> Self {
        RavenScorer {
            config,
            sessions: SessionCache::new(),
            fingerprints: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Stable content hash of a graph (memoized per `Arc`).
    fn graph_fingerprint(&self, graph: &Arc<raven_tensor::Graph>) -> u64 {
        use std::hash::{Hash, Hasher};
        let key = Arc::as_ptr(graph) as usize;
        if let Some(&fp) = self.fingerprints.lock().get(&key) {
            return fp;
        }
        let bytes = raven_tensor::serialize::to_bytes(graph);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        bytes.hash(&mut hasher);
        let fp = hasher.finish();
        self.fingerprints.lock().insert(key, fp);
        fp
    }

    /// Session-cache counters `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.sessions.stats()
    }

    /// Drop cached sessions (e.g. after a transactional model update).
    pub fn invalidate(&self, model_name: &str) {
        // Sessions are keyed `name@device@fingerprint`; clear all variants.
        self.sessions.invalidate_prefix(&format!("{model_name}@"));
    }

    fn tensor_session(
        &self,
        model_name: &str,
        graph: &Arc<raven_tensor::Graph>,
        device: Device,
    ) -> Result<Arc<InferenceSession>> {
        let (key_device, tensor_device) = match device {
            Device::CpuSingle => ("cpu1", TensorDevice::cpu_single()),
            Device::CpuParallel => ("cpuN", TensorDevice::cpu_parallel()),
            Device::Gpu => ("gpu", TensorDevice::simulated_gpu()),
        };
        let fingerprint = self.graph_fingerprint(graph);
        let key = format!("{model_name}@{key_device}@{fingerprint:x}");
        let batch_size = self.config.tensor_batch_size;
        let session = self.sessions.get_or_create(&key, || {
            Ok((
                graph.as_ref().clone(),
                SessionOptions {
                    optimize: true,
                    device: tensor_device,
                    batch_size,
                },
            ))
        })?;
        Ok(session)
    }

    fn score_tensor(
        &self,
        model: &raven_ir::ModelRef,
        graph: &Arc<raven_tensor::Graph>,
        device: Device,
        batch: &RecordBatch,
    ) -> Result<Vec<f64>> {
        let session = self.tensor_session(&model.name, graph, device)?;
        let raw = model.pipeline.encode_inputs(batch)?;
        let rows = batch.num_rows();
        let cols = model.pipeline.steps().len();
        if rows == 0 {
            return Ok(Vec::new());
        }
        let input = Tensor::matrix(rows, cols, raw.iter().map(|&v| v as f32).collect())?;
        let (outputs, _stats) = session.run_batched(raven_ml::translate::INPUT_NAME, &input)?;
        // A graph without outputs is a malformed artifact, not a reason to
        // kill the executor thread: degrade to a typed error.
        let out = outputs.first().ok_or_else(|| {
            crate::RuntimeError::Tensor(format!(
                "translated graph for model '{}' produced no outputs",
                model.name
            ))
        })?;
        Ok(out.data().iter().map(|&v| v as f64).collect())
    }

    /// Columnar-kernel scoring: encode raw inputs once for the morsel,
    /// then run the flattened ensemble's branchless batch traversal. The
    /// flat layout carries its arity, so a malformed morsel surfaces as a
    /// typed [`raven_ml::MlError::DimensionMismatch`] on the wire.
    fn score_kernel(
        &self,
        model: &raven_ir::ModelRef,
        flat: &raven_ml::FlatForest,
        batch: &RecordBatch,
    ) -> Result<Vec<f64>> {
        let raw = model.pipeline.encode_inputs(batch)?;
        Ok(flat.score_raw(&raw, batch.num_rows())?)
    }

    fn score_clustered(
        &self,
        model: &raven_ir::ModelRef,
        kmeans: &raven_ml::KMeans,
        route_columns: &[String],
        cluster_models: &[Arc<raven_ml::Pipeline>],
        batch: &RecordBatch,
    ) -> Result<Vec<f64>> {
        let rows = batch.num_rows();
        if rows == 0 {
            return Ok(Vec::new());
        }
        // Route rows on the raw encoding of the routing columns (matching
        // how the router was fitted offline).
        let routing = routing_matrix_for(&model.pipeline, batch, route_columns)?;
        let assignments = kmeans.assign_batch(&routing, rows)?;
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); cluster_models.len()];
        let mut fallback_rows: Vec<usize> = Vec::new();
        for (r, &c) in assignments.iter().enumerate() {
            if c < cluster_models.len() {
                groups[c].push(r);
            } else {
                fallback_rows.push(r);
            }
        }
        let mut out = vec![0.0f64; rows];
        for (c, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // A cluster covering every row (k=1, or skewed routing) scores
            // the batch directly — no gather needed.
            if group.len() == rows {
                return Ok(cluster_models[c].predict(batch)?);
            }
            let sub = batch.take(group)?;
            let preds = cluster_models[c].predict(&sub)?;
            for (&r, p) in group.iter().zip(preds) {
                out[r] = p;
            }
        }
        if !fallback_rows.is_empty() {
            let sub = batch.take(&fallback_rows)?;
            let preds = model.pipeline.predict(&sub)?;
            for (&r, p) in fallback_rows.iter().zip(preds) {
                out[r] = p;
            }
        }
        Ok(out)
    }
}

/// Raw routing matrix for clustered prediction: one encoded value per
/// (row, route column), using the pipeline's transforms (categorical →
/// index). Mirrors `raven_opt::rules::clustering::routing_matrix`, which
/// fits the router offline (the runtime layer cannot depend on the
/// optimizer crate).
fn routing_matrix_for(
    pipeline: &raven_ml::Pipeline,
    batch: &RecordBatch,
    route_columns: &[String],
) -> Result<Vec<f64>> {
    let rows = batch.num_rows();
    let mut cols = Vec::with_capacity(route_columns.len());
    for name in route_columns {
        let step = pipeline
            .steps()
            .iter()
            .find(|s| &s.column == name)
            .ok_or_else(|| {
                crate::RuntimeError::Internal(format!("route column {name} not in pipeline"))
            })?;
        let col = batch.column_by_name(name)?;
        cols.push(step.transform.encode_raw(col)?);
    }
    let dim = cols.len();
    let mut out = vec![0.0f64; rows * dim];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out[i * dim + j] = v;
        }
    }
    Ok(out)
}

impl Scorer for RavenScorer {
    fn score(&self, node: &Plan, batch: &RecordBatch) -> raven_relational::Result<Vec<f64>> {
        self.score_cancellable(node, batch, &CancelToken::new())
    }

    /// Cancellation hook for deadline-expired executions: the token is
    /// checked on entry and polled across the simulated external-runtime
    /// and container sleeps, so an abandoned request stops consuming the
    /// scorer instead of running to completion.
    fn score_cancellable(
        &self,
        node: &Plan,
        batch: &RecordBatch,
        cancel: &CancelToken,
    ) -> raven_relational::Result<Vec<f64>> {
        cancel.check()?;
        let run = || -> Result<Vec<f64>> {
            match node {
                Plan::Predict { model, mode, .. } => match mode {
                    ExecutionMode::InProcess => Ok(model.pipeline.predict(batch)?),
                    ExecutionMode::OutOfProcess => score_out_of_process_cancellable(
                        &model.pipeline,
                        batch,
                        &self.config.external,
                        cancel,
                    ),
                    ExecutionMode::Container => score_container_cancellable(
                        &model.pipeline,
                        batch,
                        &self.config.container,
                        cancel,
                    ),
                },
                Plan::TensorPredict {
                    model,
                    graph,
                    device,
                    ..
                } => self.score_tensor(model, graph, *device, batch),
                Plan::KernelPredict { model, flat, .. } => self.score_kernel(model, flat, batch),
                Plan::ClusteredPredict {
                    model,
                    kmeans,
                    route_columns,
                    cluster_models,
                    ..
                } => self.score_clustered(model, kmeans, route_columns, cluster_models, batch),
                Plan::Udf { name, .. } => Err(crate::RuntimeError::Exec(format!(
                    "UDF {name} is not executable (the paper treats UDFs as opaque; \
                     train or register the model to replace it)"
                ))),
                other => Err(crate::RuntimeError::Internal(format!(
                    "scorer invoked on non-model operator {}",
                    other.label()
                ))),
            }
        };
        run().map_err(|e| match e {
            crate::RuntimeError::Cancelled => ExecError::Cancelled,
            e => ExecError::Scoring(e.to_string()),
        })
    }

    /// The runtime layer knows which model it is scoring, so a sampled
    /// request's scorer span carries the model name as a label (the
    /// label closure only runs when the recorder is live).
    fn score_traced(
        &self,
        node: &Plan,
        batch: &RecordBatch,
        cancel: &CancelToken,
        trace: &raven_obs::SpanRecorder,
    ) -> raven_relational::Result<Vec<f64>> {
        let _span = trace.span_labeled("scorer-invocation", || match node {
            Plan::Predict { model, .. }
            | Plan::TensorPredict { model, .. }
            | Plan::KernelPredict { model, .. }
            | Plan::ClusteredPredict { model, .. } => model.name.clone(),
            Plan::Udf { name, .. } => name.clone(),
            other => other.label(),
        });
        self.score_cancellable(node, batch, cancel)
    }

    fn parallelizable(&self, node: &Plan) -> bool {
        // External runtimes are single processes: one startup, one stream.
        !matches!(
            node,
            Plan::Predict {
                mode: ExecutionMode::OutOfProcess | ExecutionMode::Container,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ir::ModelRef;
    use raven_ml::featurize::Transform;
    use raven_ml::translate::translate_pipeline;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![3.0], -1.0, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    fn batch(n: usize) -> RecordBatch {
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        RecordBatch::try_new(
            schema,
            vec![Column::Float64((0..n).map(|i| i as f64).collect())],
        )
        .unwrap()
    }

    fn model_ref() -> ModelRef {
        ModelRef {
            name: "m".into(),
            pipeline: Arc::new(pipeline()),
        }
    }

    fn dummy_input(n: usize) -> Box<Plan> {
        Box::new(Plan::Scan {
            table: "t".into(),
            schema: batch(n).schema().clone(),
        })
    }

    #[test]
    fn all_execution_modes_agree() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let b = batch(8);
        let reference = pipeline().predict(&b).unwrap();
        for mode in [
            ExecutionMode::InProcess,
            ExecutionMode::OutOfProcess,
            ExecutionMode::Container,
        ] {
            let node = Plan::Predict {
                input: dummy_input(8),
                model: model_ref(),
                output: "s".into(),
                mode,
            };
            assert_eq!(scorer.score(&node, &b).unwrap(), reference, "{mode:?}");
        }
    }

    #[test]
    fn tensor_predict_matches_reference() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let b = batch(16);
        let reference = pipeline().predict(&b).unwrap();
        let graph = Arc::new(translate_pipeline(&pipeline()).unwrap());
        for device in [Device::CpuSingle, Device::CpuParallel, Device::Gpu] {
            let node = Plan::TensorPredict {
                input: dummy_input(16),
                model: model_ref(),
                graph: graph.clone(),
                output: "s".into(),
                device,
            };
            let scored = scorer.score(&node, &b).unwrap();
            for (a, e) in scored.iter().zip(&reference) {
                assert!((a - e).abs() < 1e-4, "{device:?}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn session_cache_hits_across_calls() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let graph = Arc::new(translate_pipeline(&pipeline()).unwrap());
        let node = Plan::TensorPredict {
            input: dummy_input(4),
            model: model_ref(),
            graph,
            output: "s".into(),
            device: Device::CpuSingle,
        };
        let b = batch(4);
        scorer.score(&node, &b).unwrap();
        scorer.score(&node, &b).unwrap();
        let (hits, misses) = scorer.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 1);
        // Invalidation forces a rebuild.
        scorer.invalidate("m");
        scorer.score(&node, &b).unwrap();
        assert_eq!(scorer.cache_stats().1, 2);
    }

    #[test]
    fn clustered_predict_routes_rows() {
        use raven_ml::kmeans::{KMeans, KMeansParams};
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let b = batch(10);
        // Two clusters: x < 5 and x >= 5 (1-D k-means).
        let raw = pipeline().encode_inputs(&b).unwrap();
        let km = KMeans::fit(
            &raw,
            1,
            &KMeansParams {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let node = Plan::ClusteredPredict {
            input: dummy_input(10),
            model: model_ref(),
            kmeans: Arc::new(km),
            route_columns: vec!["x".into()],
            cluster_models: vec![Arc::new(pipeline()), Arc::new(pipeline())],
            output: "s".into(),
        };
        let reference = pipeline().predict(&b).unwrap();
        assert_eq!(scorer.score(&node, &b).unwrap(), reference);
    }

    #[test]
    fn traced_scoring_labels_the_model() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let node = Plan::Predict {
            input: dummy_input(4),
            model: model_ref(),
            output: "s".into(),
            mode: ExecutionMode::InProcess,
        };
        let trace = raven_obs::SpanRecorder::enabled();
        scorer
            .score_traced(&node, &batch(4), &CancelToken::new(), &trace)
            .unwrap();
        let spans = trace.into_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scorer-invocation:m");
    }

    #[test]
    fn udf_rejected() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let node = Plan::Udf {
            input: dummy_input(1),
            name: "magic".into(),
            inputs: vec![],
            output: "o".into(),
        };
        assert!(scorer.score(&node, &batch(1)).is_err());
    }

    #[test]
    fn external_not_parallelizable() {
        let scorer = RavenScorer::new(ScorerConfig::instant());
        let external = Plan::Predict {
            input: dummy_input(1),
            model: model_ref(),
            output: "s".into(),
            mode: ExecutionMode::OutOfProcess,
        };
        assert!(!scorer.parallelizable(&external));
        let inproc = Plan::Predict {
            input: dummy_input(1),
            model: model_ref(),
            output: "s".into(),
            mode: ExecutionMode::InProcess,
        };
        assert!(scorer.parallelizable(&inproc));
    }
}
