//! Wire codec for the external-runtime boundary.
//!
//! Out-of-process and containerized execution pay real data-movement
//! costs in the paper ("additional overheads, most probably due to data
//! transfers"). To charge those costs honestly, batches crossing the
//! process boundary are actually serialized to bytes and deserialized on
//! the other side using this codec.

use crate::error::RuntimeError;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use raven_data::{Column, DataType, RecordBatch, Schema};
use std::sync::Arc;

/// Serialize a batch to bytes.
pub fn batch_to_bytes(batch: &RecordBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(batch.num_rows() * batch.num_columns() * 8 + 64);
    buf.put_u32_le(batch.num_columns() as u32);
    buf.put_u64_le(batch.num_rows() as u64);
    for (field, col) in batch.schema().fields().iter().zip(batch.columns()) {
        put_str(&mut buf, &field.name);
        match col.as_ref() {
            Column::Int64(v) => {
                buf.put_u8(0);
                for &x in v {
                    buf.put_i64_le(x);
                }
            }
            Column::Float64(v) => {
                buf.put_u8(1);
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            Column::Bool(v) => {
                buf.put_u8(2);
                for &x in v {
                    buf.put_u8(x as u8);
                }
            }
            Column::Utf8(v) => {
                buf.put_u8(3);
                for s in v {
                    put_str(&mut buf, s);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize a batch from bytes.
pub fn batch_from_bytes(mut bytes: Bytes) -> Result<RecordBatch> {
    let cols = get_u32(&mut bytes)? as usize;
    let rows = get_u64(&mut bytes)? as usize;
    let mut fields = Vec::with_capacity(cols);
    let mut columns = Vec::with_capacity(cols);
    for _ in 0..cols {
        let name = get_str(&mut bytes)?;
        let tag = get_u8(&mut bytes)?;
        let (dtype, col) = match tag {
            0 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(get_i64(&mut bytes)?);
                }
                (DataType::Int64, Column::Int64(v))
            }
            1 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(get_f64(&mut bytes)?);
                }
                (DataType::Float64, Column::Float64(v))
            }
            2 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(get_u8(&mut bytes)? != 0);
                }
                (DataType::Bool, Column::Bool(v))
            }
            3 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(get_str(&mut bytes)?);
                }
                (DataType::Utf8, Column::Utf8(v))
            }
            other => return Err(RuntimeError::Codec(format!("bad column tag {other}"))),
        };
        fields.push(raven_data::Field::new(name, dtype));
        columns.push(col);
    }
    RecordBatch::try_new(Arc::new(Schema::new(fields)), columns)
        .map_err(|e| RuntimeError::Codec(e.to_string()))
}

/// Serialize predictions.
pub fn scores_to_bytes(scores: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(scores.len() * 8 + 8);
    buf.put_u64_le(scores.len() as u64);
    for &s in scores {
        buf.put_f64_le(s);
    }
    buf.freeze()
}

/// Deserialize predictions.
pub fn scores_from_bytes(mut bytes: Bytes) -> Result<Vec<f64>> {
    let n = get_u64(&mut bytes)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_f64(&mut bytes)?);
    }
    Ok(out)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn need(bytes: &Bytes, n: usize) -> Result<()> {
    if bytes.remaining() < n {
        Err(RuntimeError::Codec("truncated payload".into()))
    } else {
        Ok(())
    }
}

fn get_u8(bytes: &mut Bytes) -> Result<u8> {
    need(bytes, 1)?;
    Ok(bytes.get_u8())
}
fn get_u32(bytes: &mut Bytes) -> Result<u32> {
    need(bytes, 4)?;
    Ok(bytes.get_u32_le())
}
fn get_u64(bytes: &mut Bytes) -> Result<u64> {
    need(bytes, 8)?;
    Ok(bytes.get_u64_le())
}
fn get_i64(bytes: &mut Bytes) -> Result<i64> {
    need(bytes, 8)?;
    Ok(bytes.get_i64_le())
}
fn get_f64(bytes: &mut Bytes) -> Result<f64> {
    need(bytes, 8)?;
    Ok(bytes.get_f64_le())
}
fn get_str(bytes: &mut Bytes) -> Result<String> {
    let n = get_u32(bytes)? as usize;
    need(bytes, n)?;
    let s = bytes.split_to(n);
    String::from_utf8(s.to_vec()).map_err(|_| RuntimeError::Codec("invalid utf8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> RecordBatch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("bp", DataType::Float64),
            ("flag", DataType::Bool),
            ("dest", DataType::Utf8),
        ])
        .into_shared();
        RecordBatch::try_new(
            schema,
            vec![
                Column::from(vec![1i64, 2]),
                Column::from(vec![1.5, -2.5]),
                Column::from(vec![true, false]),
                Column::from(vec!["JFK", "it's"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn batch_roundtrip() {
        let b = batch();
        let decoded = batch_from_bytes(batch_to_bytes(&b)).unwrap();
        assert_eq!(b, decoded);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        let b = RecordBatch::empty(schema);
        assert_eq!(batch_from_bytes(batch_to_bytes(&b)).unwrap().num_rows(), 0);
    }

    #[test]
    fn scores_roundtrip() {
        let s = vec![1.0, -2.5, f64::MAX];
        assert_eq!(scores_from_bytes(scores_to_bytes(&s)).unwrap(), s);
        assert!(scores_from_bytes(Bytes::from_static(&[1, 2])).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = batch_to_bytes(&batch());
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(batch_from_bytes(cut).is_err());
    }
}
