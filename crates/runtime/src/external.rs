//! Out-of-process and containerized execution (paper §5).
//!
//! SQL Server's `sp_execute_external_script` instantiates an external
//! language runtime per query; the paper measures "a constant overhead of
//! about half a second to start the external language runtime and some
//! additional overheads, most probably due to data transfers".
//!
//! There is no Python runtime in this environment, so per the substitution
//! rule we reproduce the *mechanics* honestly: each call crosses a real
//! thread boundary with the batch serialized to bytes on the way in and
//! predictions serialized on the way out, plus a configurable startup
//! latency that defaults to the paper's observed constants (0.5 s external,
//! 2 s containerized — containers additionally pay a per-request HTTP
//! round-trip). Tests run with zero latency; benchmarks use the defaults.

use crate::codec;
use crate::error::RuntimeError;
use crate::Result;
use raven_data::RecordBatch;
use raven_ml::Pipeline;
use raven_relational::CancelToken;
use std::sync::mpsc;
use std::time::Duration;

/// Sleep `total`, polling `cancel` so a deadline-expired request stops
/// paying for a simulated runtime it no longer wants. Errors with
/// [`RuntimeError::Cancelled`] if the token fires mid-sleep.
fn sleep_cancellable(total: Duration, cancel: &CancelToken) -> Result<()> {
    const SLICE: Duration = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if cancel.is_cancelled() {
            return Err(RuntimeError::Cancelled);
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
    if cancel.is_cancelled() {
        return Err(RuntimeError::Cancelled);
    }
    Ok(())
}

/// Config for the out-of-process runtime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalConfig {
    /// Fixed cost to start the external language runtime (per query).
    pub startup_latency: Duration,
    /// Simulated transfer bandwidth across the process boundary
    /// (bytes/second); `f64::INFINITY` disables the charge.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for ExternalConfig {
    fn default() -> Self {
        ExternalConfig {
            startup_latency: Duration::from_millis(500),
            bandwidth_bytes_per_sec: 1.0e9,
        }
    }
}

impl ExternalConfig {
    /// Zero-cost config for unit tests.
    pub fn instant() -> Self {
        ExternalConfig {
            startup_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }
}

/// Out-of-process scoring: serialize → worker thread → deserialize.
pub fn score_out_of_process(
    pipeline: &Pipeline,
    batch: &RecordBatch,
    config: &ExternalConfig,
) -> Result<Vec<f64>> {
    score_out_of_process_cancellable(pipeline, batch, config, &CancelToken::new())
}

/// [`score_out_of_process`] with a cancellation token polled across the
/// simulated startup and transfer sleeps — the runtime layer's hook for
/// deadline-expired serving requests.
pub fn score_out_of_process_cancellable(
    pipeline: &Pipeline,
    batch: &RecordBatch,
    config: &ExternalConfig,
    cancel: &CancelToken,
) -> Result<Vec<f64>> {
    // Startup: the external runtime boots before any work happens.
    sleep_cancellable(config.startup_latency, cancel)?;
    let payload = codec::batch_to_bytes(batch);
    charge_transfer(payload.len(), config, cancel)?;

    // The "external process": a worker thread that only sees bytes.
    let (tx, rx) = mpsc::channel();
    let pipeline = pipeline.clone();
    let handle = std::thread::spawn(move || {
        let result = (|| -> Result<bytes::Bytes> {
            let batch = codec::batch_from_bytes(payload)?;
            let scores = pipeline
                .predict(&batch)
                .map_err(|e| RuntimeError::External(e.to_string()))?;
            Ok(codec::scores_to_bytes(&scores))
        })();
        let _ = tx.send(result);
    });
    let response = rx
        .recv()
        .map_err(|_| RuntimeError::External("external worker disappeared".into()))??;
    handle
        .join()
        .map_err(|_| RuntimeError::External("external worker panicked".into()))?;
    charge_transfer(response.len(), config, cancel)?;
    codec::scores_from_bytes(response)
}

/// Config for the containerized runtime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerConfig {
    /// Container cold-start cost.
    pub startup_latency: Duration,
    /// Per-request HTTP round-trip latency.
    pub request_latency: Duration,
    /// Rows per REST request.
    pub rows_per_request: usize,
    /// Network bandwidth, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            startup_latency: Duration::from_secs(2),
            request_latency: Duration::from_millis(5),
            rows_per_request: 10_000,
            bandwidth_bytes_per_sec: 1.25e8, // ~1 Gbit/s
        }
    }
}

impl ContainerConfig {
    /// Zero-cost config for unit tests.
    pub fn instant() -> Self {
        ContainerConfig {
            startup_latency: Duration::ZERO,
            request_latency: Duration::ZERO,
            rows_per_request: 10_000,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }
}

/// Containerized scoring: chunked REST-style requests to a worker.
pub fn score_container(
    pipeline: &Pipeline,
    batch: &RecordBatch,
    config: &ContainerConfig,
) -> Result<Vec<f64>> {
    score_container_cancellable(pipeline, batch, config, &CancelToken::new())
}

/// [`score_container`] with a cancellation token polled between REST
/// chunks: an expired deadline stops the remaining round-trips.
pub fn score_container_cancellable(
    pipeline: &Pipeline,
    batch: &RecordBatch,
    config: &ContainerConfig,
    cancel: &CancelToken,
) -> Result<Vec<f64>> {
    sleep_cancellable(config.startup_latency, cancel)?;
    let rows = batch.num_rows();
    let chunk = config.rows_per_request.max(1);
    let mut out = Vec::with_capacity(rows);
    let mut start = 0;
    while start < rows || (rows == 0 && start == 0) {
        if cancel.is_cancelled() {
            return Err(RuntimeError::Cancelled);
        }
        let end = (start + chunk).min(rows);
        let part = batch
            .slice(start, end)
            .map_err(|e| RuntimeError::Exec(e.to_string()))?;
        sleep_cancellable(config.request_latency, cancel)?;
        let external = ExternalConfig {
            startup_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: config.bandwidth_bytes_per_sec,
        };
        out.extend(score_out_of_process_cancellable(
            pipeline, &part, &external, cancel,
        )?);
        start = end;
        if rows == 0 {
            break;
        }
    }
    Ok(out)
}

fn charge_transfer(bytes: usize, config: &ExternalConfig, cancel: &CancelToken) -> Result<()> {
    if config.bandwidth_bytes_per_sec.is_finite() && config.bandwidth_bytes_per_sec > 0.0 {
        let secs = bytes as f64 / config.bandwidth_bytes_per_sec;
        if secs > 1e-6 {
            sleep_cancellable(Duration::from_secs_f64(secs), cancel)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel};

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 1.0, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    fn batch(n: usize) -> RecordBatch {
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        RecordBatch::try_new(
            schema,
            vec![Column::Float64((0..n).map(|i| i as f64).collect())],
        )
        .unwrap()
    }

    #[test]
    fn out_of_process_matches_in_process() {
        let p = pipeline();
        let b = batch(10);
        let reference = p.predict(&b).unwrap();
        let external = score_out_of_process(&p, &b, &ExternalConfig::instant()).unwrap();
        assert_eq!(reference, external);
    }

    #[test]
    fn container_matches_in_process_across_chunks() {
        let p = pipeline();
        let b = batch(25);
        let reference = p.predict(&b).unwrap();
        let config = ContainerConfig {
            rows_per_request: 7,
            ..ContainerConfig::instant()
        };
        let scored = score_container(&p, &b, &config).unwrap();
        assert_eq!(reference, scored);
    }

    #[test]
    fn startup_latency_is_charged() {
        let p = pipeline();
        let b = batch(1);
        let config = ExternalConfig {
            startup_latency: Duration::from_millis(30),
            bandwidth_bytes_per_sec: f64::INFINITY,
        };
        let start = std::time::Instant::now();
        score_out_of_process(&p, &b, &config).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn cancellation_interrupts_startup_latency() {
        let p = pipeline();
        let b = batch(4);
        let config = ExternalConfig {
            startup_latency: Duration::from_secs(10),
            bandwidth_bytes_per_sec: f64::INFINITY,
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = std::time::Instant::now();
        let err = score_out_of_process_cancellable(&p, &b, &config, &cancel);
        assert_eq!(err, Err(RuntimeError::Cancelled));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "cancellation must not wait out the simulated startup"
        );
        let container = ContainerConfig {
            startup_latency: Duration::from_secs(10),
            ..ContainerConfig::instant()
        };
        assert_eq!(
            score_container_cancellable(&p, &b, &container, &cancel),
            Err(RuntimeError::Cancelled)
        );
    }

    #[test]
    fn empty_batch_scores_empty() {
        let p = pipeline();
        let b = batch(0);
        assert!(score_out_of_process(&p, &b, &ExternalConfig::instant())
            .unwrap()
            .is_empty());
        assert!(score_container(&p, &b, &ContainerConfig::instant())
            .unwrap()
            .is_empty());
    }
}
