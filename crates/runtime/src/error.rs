//! Error type for the runtime layer.

use std::fmt;

/// Errors produced while executing inference queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    Exec(String),
    Ml(String),
    Tensor(String),
    Codec(String),
    External(String),
    /// Scoring was cancelled (deadline expiry or explicit cancel) before
    /// it completed.
    Cancelled,
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Exec(m) => write!(f, "execution error: {m}"),
            RuntimeError::Ml(m) => write!(f, "model error: {m}"),
            RuntimeError::Tensor(m) => write!(f, "tensor runtime error: {m}"),
            RuntimeError::Codec(m) => write!(f, "serialization error: {m}"),
            RuntimeError::External(m) => write!(f, "external runtime error: {m}"),
            RuntimeError::Cancelled => write!(f, "scoring cancelled"),
            RuntimeError::Internal(m) => write!(f, "internal runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<raven_relational::ExecError> for RuntimeError {
    fn from(e: raven_relational::ExecError) -> Self {
        RuntimeError::Exec(e.to_string())
    }
}

impl From<raven_ml::MlError> for RuntimeError {
    fn from(e: raven_ml::MlError) -> Self {
        RuntimeError::Ml(e.to_string())
    }
}

impl From<raven_tensor::TensorError> for RuntimeError {
    fn from(e: raven_tensor::TensorError) -> Self {
        RuntimeError::Tensor(e.to_string())
    }
}

impl From<raven_data::DataError> for RuntimeError {
    fn from(e: raven_data::DataError) -> Self {
        RuntimeError::Exec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: RuntimeError = raven_ml::MlError::UnknownCategory("x".into()).into();
        assert!(e.to_string().contains("unknown category"));
        let e: RuntimeError = raven_tensor::TensorError::NameNotFound("t".into()).into();
        assert!(e.to_string().contains("tensor"));
    }
}
