//! # raven-runtime
//!
//! Inference-query execution (§5 of *"Extending Relational Query
//! Processing with ML Inference"*, CIDR 2020): the layer that takes an
//! optimized unified-IR plan and actually runs it, choosing — per model
//! operator — among the paper's three execution strategies:
//!
//! * **In-process** ([`scorer`]): classical pipelines score directly;
//!   NN-translated pipelines run on the integrated tensor runtime with
//!   cached inference sessions (the Raven configuration);
//! * **Out-of-process** ([`external`]): an external-language-runtime
//!   simulation (`sp_execute_external_script`): real
//!   serialize → worker → deserialize round trips plus a configurable
//!   startup latency (the paper observes ~0.5 s constant overhead);
//! * **Containerized** ([`external`], [`external::ContainerConfig`]):
//!   REST-over-container simulation with higher fixed costs.
//!
//! [`codegen`] is the paper's *Runtime Code Generator*: it renders the
//! optimized IR back to executable SQL text (inlined models appear as
//! `CASE` expressions; remaining model operators as `PREDICT(...)`).
//! [`engine::QueryEngine`] packages catalog + scorer + executor into the
//! one-call entry point used by `raven-core`.

pub mod codec;
pub mod codegen;
pub mod engine;
pub mod error;
pub mod external;
pub mod scorer;

pub use engine::{ExecutionStats, QueryEngine};
pub use error::RuntimeError;
pub use scorer::{RavenScorer, ScorerConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
