//! Placement differential suite: the optimizer swaps a model operator
//! between classical row-at-a-time scoring, the columnar kernel, and the
//! tensor translation *per query*, so the strategies must agree on the
//! same batch. Classical ↔ kernel must be **bitwise identical** (both
//! are f64 walks of the same tree); the tensor path computes in f32 and
//! is held to a numeric tolerance on finite inputs instead.

use proptest::collection::vec;
use proptest::prelude::*;
use raven_data::{Column, DataType, RecordBatch, Schema};
use raven_ir::{Device, ExecutionMode, ModelRef, Plan};
use raven_ml::featurize::{StandardScaler, Transform};
use raven_ml::translate::translate_pipeline;
use raven_ml::tree::TreeNode;
use raven_ml::{DecisionTree, Estimator, FeatureStep, FlatForest, Pipeline, RandomForest};
use raven_relational::Scorer;
use raven_runtime::{RavenScorer, ScorerConfig};
use std::sync::Arc;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn grow(state: &mut u64, nodes: &mut Vec<TreeNode>, n_features: usize, depth: usize) -> usize {
    let idx = nodes.len();
    if depth == 0 || next(state).is_multiple_of(4) {
        nodes.push(TreeNode::Leaf {
            value: unit(state) * 10.0 - 5.0,
        });
        return idx;
    }
    nodes.push(TreeNode::Leaf { value: 0.0 });
    let feature = (next(state) as usize) % n_features;
    let threshold = unit(state) * 4.0 - 2.0;
    let left = grow(state, nodes, n_features, depth - 1);
    let right = grow(state, nodes, n_features, depth - 1);
    nodes[idx] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    idx
}

/// A forest pipeline over two columns, one scaled — so the kernel's
/// fused featurization is exercised, not just the raw gather.
fn forest_pipeline(seed: u64, n_trees: usize) -> Pipeline {
    let mut state = seed;
    let trees: Vec<DecisionTree> = (0..n_trees)
        .map(|_| {
            let mut nodes = Vec::new();
            grow(&mut state, &mut nodes, 2, 4);
            DecisionTree::from_nodes(nodes, 2).unwrap()
        })
        .collect();
    Pipeline::new(
        vec![
            FeatureStep::new("a", Transform::Identity),
            FeatureStep::new(
                "b",
                Transform::Scale(StandardScaler {
                    mean: 1.0,
                    std: 2.0,
                }),
            ),
        ],
        Estimator::Forest(RandomForest::from_trees(trees).unwrap()),
    )
    .unwrap()
}

fn batch_of(a: Vec<f64>, b: Vec<f64>) -> RecordBatch {
    let schema =
        Schema::from_pairs(&[("a", DataType::Float64), ("b", DataType::Float64)]).into_shared();
    RecordBatch::try_new(schema, vec![Column::Float64(a), Column::Float64(b)]).unwrap()
}

fn model_ref(pipeline: Pipeline) -> ModelRef {
    ModelRef {
        name: "m".into(),
        pipeline: Arc::new(pipeline),
    }
}

fn input_stub(batch: &RecordBatch) -> Box<Plan> {
    Box::new(Plan::Scan {
        table: "t".into(),
        schema: batch.schema().clone(),
    })
}

fn feature_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -5.0..5.0,
        Just(0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

proptest! {
    /// Classical ↔ kernel: bitwise identical, adversarial inputs included.
    #[test]
    fn classical_and_kernel_agree_bitwise(
        seed in 0..u64::MAX,
        n_trees in 1..6usize,
        a in vec(feature_value(), 0..48),
    ) {
        let mut state = seed ^ 0xabcd;
        let b: Vec<f64> = a.iter().map(|_| unit(&mut state) * 6.0 - 3.0).collect();
        let batch = batch_of(a, b);
        let model = model_ref(forest_pipeline(seed, n_trees));
        let scorer = RavenScorer::new(ScorerConfig::instant());

        let classical = scorer.score(&Plan::Predict {
            input: input_stub(&batch),
            model: model.clone(),
            output: "s".into(),
            mode: ExecutionMode::InProcess,
        }, &batch).unwrap();

        let flat = FlatForest::from_pipeline(&model.pipeline).unwrap();
        let kernel = scorer.score(&Plan::KernelPredict {
            input: input_stub(&batch),
            model: model.clone(),
            flat: Arc::new(flat),
            output: "s".into(),
        }, &batch).unwrap();

        prop_assert_eq!(classical.len(), kernel.len());
        for (r, (c, k)) in classical.iter().zip(&kernel).enumerate() {
            assert_eq!(
                c.to_bits(),
                k.to_bits(),
                "row {r}: classical {c:?} vs kernel {k:?}"
            );
        }
    }

    /// All three placements on finite inputs; the f32 tensor path is
    /// held to a tolerance, the other two to bit equality (above).
    #[test]
    fn tensor_placement_within_tolerance(
        seed in 0..u64::MAX,
        n_trees in 1..5usize,
        a in vec(-3.0..3.0f64, 1..32),
    ) {
        let mut state = seed ^ 0x1234;
        let b: Vec<f64> = a.iter().map(|_| unit(&mut state) * 4.0 - 2.0).collect();
        let batch = batch_of(a, b);
        let model = model_ref(forest_pipeline(seed, n_trees));
        let scorer = RavenScorer::new(ScorerConfig::instant());

        let flat = FlatForest::from_pipeline(&model.pipeline).unwrap();
        let kernel = scorer.score(&Plan::KernelPredict {
            input: input_stub(&batch),
            model: model.clone(),
            flat: Arc::new(flat),
            output: "s".into(),
        }, &batch).unwrap();

        let graph = Arc::new(translate_pipeline(&model.pipeline).unwrap());
        let tensor = scorer.score(&Plan::TensorPredict {
            input: input_stub(&batch),
            model: model.clone(),
            graph,
            output: "s".into(),
            device: Device::CpuSingle,
        }, &batch).unwrap();

        prop_assert_eq!(kernel.len(), tensor.len());
        for (r, (k, t)) in kernel.iter().zip(&tensor).enumerate() {
            let tol = 1e-3 * k.abs().max(1.0);
            assert!(
                (k - t).abs() <= tol,
                "row {r}: kernel {k} vs tensor {t} (tol {tol})"
            );
        }
    }
}
