//! Table and column statistics.
//!
//! Statistics drive two things in the reproduction:
//! * classical cost-based decisions (row counts, selectivity guesses);
//! * the paper's §4.1 "derived predicates from data properties": if the
//!   stats say `min(age) = 36`, the optimizer may derive `age > 35` and use
//!   it for predicate-based model pruning even without an explicit filter.

use crate::column::Column;
use crate::table::Table;
use crate::types::Value;
use std::collections::BTreeSet;

/// Maximum number of distinct values tracked per column before the distinct
/// set is dropped (treated as high-cardinality).
pub const DISTINCT_TRACK_LIMIT: usize = 64;

/// Statistics for a single column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (matches the schema field name).
    pub name: String,
    /// Row count.
    pub count: usize,
    /// Minimum value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum value (numeric columns only).
    pub max: Option<f64>,
    /// Exact distinct values, if the cardinality stayed under
    /// [`DISTINCT_TRACK_LIMIT`]. Tracked for string and integer columns —
    /// exactly the categorical features the paper's clustering/pruning
    /// optimizations care about.
    pub distinct: Option<Vec<Value>>,
}

impl ColumnStats {
    /// Compute stats for one column.
    pub fn compute(name: &str, col: &Column) -> ColumnStats {
        let count = col.len();
        let (mut min, mut max) = (None, None);
        let mut distinct: Option<Vec<Value>> = None;

        match col {
            Column::Float64(v) => {
                for &x in v {
                    min = Some(min.map_or(x, |m: f64| m.min(x)));
                    max = Some(max.map_or(x, |m: f64| m.max(x)));
                }
            }
            Column::Int64(v) => {
                let mut set = BTreeSet::new();
                let mut overflow = false;
                for &x in v {
                    let xf = x as f64;
                    min = Some(min.map_or(xf, |m: f64| m.min(xf)));
                    max = Some(max.map_or(xf, |m: f64| m.max(xf)));
                    if !overflow {
                        set.insert(x);
                        if set.len() > DISTINCT_TRACK_LIMIT {
                            overflow = true;
                        }
                    }
                }
                if !overflow && count > 0 {
                    distinct = Some(set.into_iter().map(Value::Int64).collect());
                }
            }
            Column::Bool(v) => {
                for &b in v {
                    let xf = if b { 1.0 } else { 0.0 };
                    min = Some(min.map_or(xf, |m: f64| m.min(xf)));
                    max = Some(max.map_or(xf, |m: f64| m.max(xf)));
                }
                if count > 0 {
                    let mut vals: Vec<Value> = Vec::new();
                    if v.contains(&false) {
                        vals.push(Value::Bool(false));
                    }
                    if v.contains(&true) {
                        vals.push(Value::Bool(true));
                    }
                    distinct = Some(vals);
                }
            }
            Column::Utf8(v) => {
                let mut set = BTreeSet::new();
                let mut overflow = false;
                for s in v {
                    if !overflow {
                        set.insert(s.clone());
                        if set.len() > DISTINCT_TRACK_LIMIT {
                            overflow = true;
                        }
                    }
                }
                if !overflow && count > 0 {
                    distinct = Some(set.into_iter().map(Value::Utf8).collect());
                }
            }
        }

        ColumnStats {
            name: name.to_string(),
            count,
            min,
            max,
            distinct,
        }
    }

    /// True if every row holds one single value (a constant column).
    /// Constant columns are what predicate derivation exploits.
    pub fn constant_value(&self) -> Option<Value> {
        match &self.distinct {
            Some(values) if values.len() == 1 => Some(values[0].clone()),
            _ => match (self.min, self.max) {
                (Some(lo), Some(hi)) if lo == hi && self.count > 0 => Some(Value::Float64(lo)),
                _ => None,
            },
        }
    }

    /// Number of distinct values if tracked.
    pub fn n_distinct(&self) -> Option<usize> {
        self.distinct.as_ref().map(Vec::len)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute stats for every column of `table`.
    pub fn compute(table: &Table) -> TableStats {
        let batch = table.batch();
        let columns = batch
            .schema()
            .fields()
            .iter()
            .zip(batch.columns())
            .map(|(f, c)| ColumnStats::compute(&f.name, c))
            .collect();
        TableStats {
            row_count: table.num_rows(),
            columns,
        }
    }

    /// Stats for a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("age", DataType::Float64),
            ("dest", DataType::Utf8),
            ("pregnant", DataType::Bool),
            ("code", DataType::Int64),
        ])
        .into_shared();
        Table::try_new(
            schema,
            vec![
                Column::from(vec![36.0, 41.0, 50.0]),
                Column::from(vec!["JFK", "JFK", "JFK"]),
                Column::from(vec![true, true, true]),
                Column::from(vec![7i64, 7, 9]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn min_max_float() {
        let stats = TableStats::compute(&table());
        let age = stats.column("age").unwrap();
        assert_eq!(age.min, Some(36.0));
        assert_eq!(age.max, Some(50.0));
        assert_eq!(age.count, 3);
        assert!(age.distinct.is_none());
    }

    #[test]
    fn constant_detection() {
        let stats = TableStats::compute(&table());
        assert_eq!(
            stats.column("dest").unwrap().constant_value(),
            Some(Value::from("JFK"))
        );
        assert_eq!(
            stats.column("pregnant").unwrap().constant_value(),
            Some(Value::Bool(true))
        );
        assert_eq!(stats.column("age").unwrap().constant_value(), None);
        assert_eq!(stats.column("code").unwrap().constant_value(), None);
    }

    #[test]
    fn distinct_tracking_and_overflow() {
        let many: Vec<i64> = (0..200).collect();
        let stats = ColumnStats::compute("x", &Column::Int64(many));
        assert!(stats.distinct.is_none());

        let few = ColumnStats::compute("y", &Column::Int64(vec![2, 1, 2, 3]));
        assert_eq!(
            few.distinct,
            Some(vec![Value::Int64(1), Value::Int64(2), Value::Int64(3)])
        );
        assert_eq!(few.n_distinct(), Some(3));
    }

    #[test]
    fn empty_column_stats() {
        let stats = ColumnStats::compute("e", &Column::Float64(vec![]));
        assert_eq!(stats.count, 0);
        assert_eq!(stats.min, None);
        assert_eq!(stats.constant_value(), None);
    }

    #[test]
    fn table_row_count() {
        let stats = TableStats::compute(&table());
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.columns.len(), 4);
        assert!(stats.column("nope").is_none());
    }
}
