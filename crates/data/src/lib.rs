//! # raven-data
//!
//! Columnar in-memory data substrate for the raven-rs reproduction of
//! *"Extending Relational Query Processing with ML Inference"* (CIDR 2020).
//!
//! This crate plays the role of SQL Server's storage layer in the paper: it
//! provides the typed values, columns, record batches, tables, table
//! statistics and the catalog that every other crate builds on.
//!
//! Design notes:
//! * Columns are dense (no null bitmap). The paper's workloads — hospital
//!   length-of-stay and flight delay — are fully materialized feature
//!   tables, so nullability is out of scope; see `DESIGN.md`.
//! * `Table` owns a single contiguous chunk per column. Execution splits
//!   tables into [`RecordBatch`] morsels for parallel processing.
//! * Statistics ([`stats`]) power the paper's "derived predicates from data
//!   properties" optimization (§4.1 of the paper).

pub mod batch;
pub mod catalog;
pub mod column;
pub mod error;
pub mod namespace;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;

pub use batch::RecordBatch;
pub use catalog::Catalog;
pub use column::Column;
pub use error::DataError;
pub use namespace::{CatalogShards, NamespaceMap};
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use types::{DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
