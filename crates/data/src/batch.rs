//! Record batches: the unit of columnar execution.

use crate::column::Column;
use crate::error::DataError;
use crate::schema::Schema;
use crate::types::Value;
use crate::Result;
use std::sync::Arc;

/// A horizontal slice of a table: a shared schema plus one column per field.
///
/// Batches are what flows between physical operators; the executor splits
/// tables into batches ("morsels") so scans and model scoring can be
/// parallelized — the effect behind the paper's observation that SQL Server
/// auto-parallelizes scan + PREDICT (Fig. 3, observation iii).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: Arc<Schema>,
    /// Columns are shared: projections, renames and scans pass columns
    /// through by reference count instead of deep-copying (string columns
    /// in particular would otherwise dominate plan execution).
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl RecordBatch {
    /// Build a batch from owned columns, validating count/types/lengths.
    pub fn try_new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Self> {
        RecordBatch::try_new_shared(schema, columns.into_iter().map(Arc::new).collect())
    }

    /// Build a batch from shared columns (zero-copy passthrough).
    pub fn try_new_shared(schema: Arc<Schema>, columns: Vec<Arc<Column>>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(DataError::SchemaMismatch(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.dtype != col.data_type() {
                return Err(DataError::TypeMismatch {
                    expected: field.dtype.to_string(),
                    actual: col.data_type().to_string(),
                });
            }
            if col.len() != rows {
                return Err(DataError::LengthMismatch {
                    expected: rows,
                    actual: col.len(),
                });
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(Column::empty(f.dtype)))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns (shared handles).
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> Result<&Column> {
        self.columns
            .get(idx)
            .map(|c| c.as_ref())
            .ok_or(DataError::OutOfBounds {
                index: idx,
                len: self.columns.len(),
            })
    }

    /// Shared handle to the column at `idx` (for zero-copy passthrough).
    pub fn column_arc(&self, idx: usize) -> Result<&Arc<Column>> {
        self.columns.get(idx).ok_or(DataError::OutOfBounds {
            index: idx,
            len: self.columns.len(),
        })
    }

    /// Column by (possibly unqualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// Read one row as values (test/debug convenience; not a hot path).
    pub fn row(&self, idx: usize) -> Result<Vec<Value>> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<RecordBatch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::try_new(self.schema.clone(), columns)
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.take(indices))
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::try_new(self.schema.clone(), columns)
    }

    /// Copy rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Result<RecordBatch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(start, end))
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::try_new(self.schema.clone(), columns)
    }

    /// Project to the given column indices (with the projected schema).
    /// Columns are shared, not copied.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        let schema = Arc::new(self.schema.project(indices)?);
        let columns = indices
            .iter()
            .map(|&i| self.column_arc(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::try_new_shared(schema, columns)
    }

    /// Vertically concatenate batches sharing a schema.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let first = batches
            .first()
            .ok_or_else(|| DataError::Internal("cannot concat zero batches".into()))?;
        if batches.len() == 1 {
            return Ok(first.clone());
        }
        let schema = first.schema.clone();
        let mut columns: Vec<Column> = first.columns.iter().map(|c| c.as_ref().clone()).collect();
        for batch in &batches[1..] {
            if batch.schema.fields() != schema.fields() {
                return Err(DataError::SchemaMismatch(
                    "concat requires identical schemas".into(),
                ));
            }
            for (acc, col) in columns.iter_mut().zip(&batch.columns) {
                acc.extend_from(col)?;
            }
        }
        RecordBatch::try_new(schema, columns)
    }

    /// Extract the named numeric columns as a row-major `f64` feature
    /// matrix (`rows × features.len()`), the layout the ML runtime expects.
    pub fn to_feature_matrix(&self, features: &[String]) -> Result<Vec<f64>> {
        let cols: Vec<&Column> = features
            .iter()
            .map(|f| self.column_by_name(f))
            .collect::<Result<Vec<_>>>()?;
        let per_col: Vec<Vec<f64>> = cols.iter().map(|c| c.to_f64_vec()).collect::<Result<_>>()?;
        let n = self.rows;
        let k = per_col.len();
        let mut out = vec![0.0f64; n * k];
        for (j, col) in per_col.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                out[i * k + j] = v;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn sample() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("bp", DataType::Float64),
        ])
        .into_shared();
        RecordBatch::try_new(
            schema,
            vec![
                Column::from(vec![1i64, 2, 3]),
                Column::from(vec![120.0, 150.0, 135.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Schema::from_pairs(&[("a", DataType::Int64)]).into_shared();
        // Wrong column count.
        assert!(RecordBatch::try_new(schema.clone(), vec![]).is_err());
        // Wrong type.
        assert!(RecordBatch::try_new(schema.clone(), vec![Column::from(vec![1.0])]).is_err());
        // OK.
        let b = RecordBatch::try_new(schema, vec![Column::from(vec![1i64])]).unwrap();
        assert_eq!(b.num_rows(), 1);
    }

    #[test]
    fn length_mismatch_rejected() {
        let schema =
            Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Int64)]).into_shared();
        let err = RecordBatch::try_new(
            schema,
            vec![Column::from(vec![1i64, 2]), Column::from(vec![1i64])],
        );
        assert!(matches!(err, Err(DataError::LengthMismatch { .. })));
    }

    #[test]
    fn filter_take_slice() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column(0).unwrap().i64_values().unwrap(), &[1, 3]);

        let t = b.take(&[2, 2]).unwrap();
        assert_eq!(t.column(1).unwrap().f64_values().unwrap(), &[135.0, 135.0]);

        let s = b.slice(1, 2).unwrap();
        assert_eq!(s.num_rows(), 1);
        assert_eq!(s.row(0).unwrap()[0], Value::Int64(2));
    }

    #[test]
    fn project_reorders_schema_and_data() {
        let b = sample();
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.schema().names(), vec!["bp"]);
        assert_eq!(p.num_columns(), 1);
    }

    #[test]
    fn concat_batches() {
        let b = sample();
        let all = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(all.num_rows(), 6);
        assert!(RecordBatch::concat(&[]).is_err());
    }

    #[test]
    fn feature_matrix_is_row_major() {
        let b = sample();
        let m = b
            .to_feature_matrix(&["id".to_string(), "bp".to_string()])
            .unwrap();
        assert_eq!(m, vec![1.0, 120.0, 2.0, 150.0, 3.0, 135.0]);
    }

    #[test]
    fn empty_batch() {
        let schema = Schema::from_pairs(&[("a", DataType::Utf8)]).into_shared();
        let b = RecordBatch::empty(schema);
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.num_columns(), 1);
    }
}
