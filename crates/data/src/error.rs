//! Error type for the data substrate.

use std::fmt;

/// Errors produced by the data layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column/field name was not found in a schema.
    FieldNotFound(String),
    /// Two schemas or columns that must match did not.
    SchemaMismatch(String),
    /// A value had the wrong type for the requested operation.
    TypeMismatch { expected: String, actual: String },
    /// Column lengths within a batch/table disagree.
    LengthMismatch { expected: usize, actual: usize },
    /// A table name was not found in the catalog.
    TableNotFound(String),
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// Index out of bounds.
    OutOfBounds { index: usize, len: usize },
    /// Anything else.
    Internal(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::FieldNotFound(name) => write!(f, "field not found: {name}"),
            DataError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            DataError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DataError::TableNotFound(name) => write!(f, "table not found: {name}"),
            DataError::TableExists(name) => write!(f, "table already exists: {name}"),
            DataError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            DataError::Internal(msg) => write!(f, "internal data error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            DataError::FieldNotFound("x".into()).to_string(),
            "field not found: x"
        );
        assert_eq!(
            DataError::TypeMismatch {
                expected: "Float64".into(),
                actual: "Utf8".into()
            }
            .to_string(),
            "type mismatch: expected Float64, got Utf8"
        );
        assert_eq!(
            DataError::OutOfBounds { index: 4, len: 2 }.to_string(),
            "index 4 out of bounds for length 2"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(DataError::Internal("x".into()));
    }
}
