//! Namespaced registries: a generic sharded name → value map
//! ([`NamespaceMap`]) and its catalog instantiation ([`CatalogShards`] —
//! one independent [`Catalog`] per namespace).
//!
//! The serving layer's multi-tenant story starts here: each tenant owns a
//! whole catalog of its own, so `alpha`'s table `patients` and `beta`'s
//! table `patients` are unrelated objects with independent contents,
//! statistics, and generations. Isolation is structural (separate
//! `Catalog` instances), not a key prefix — nothing a binder or executor
//! resolves through one namespace's catalog can observe another's, and a
//! replacement in one namespace advances only that catalog's generation
//! counter.
//!
//! Both registries are sharded: namespaces hash (stable FNV-1a, no
//! per-process hasher randomness) to one of N `RwLock<HashMap>` shards,
//! so concurrent lookups of different namespaces do not serialize on one
//! global lock. Lookups of an existing namespace take a read lock on one
//! shard only. The serving layer reuses [`NamespaceMap`] for its tenant
//! registry, so the data layer and the serving layer agree on what a
//! namespace registry *is*.

use crate::catalog::Catalog;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Default shard count — enough to make cross-namespace lock contention
/// negligible at realistic tenant counts, small enough to iterate cheaply.
pub const DEFAULT_CATALOG_SHARDS: usize = 16;

/// Stable FNV-1a over the namespace name — deterministic shard placement
/// with no per-process hasher randomness.
fn shard_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// A generic sharded registry of named values (namespace → `V`).
/// Values are handed out by clone, so `V` is typically an `Arc<…>`.
pub struct NamespaceMap<V> {
    shards: Box<[RwLock<HashMap<String, V>>]>,
}

impl<V: Clone> NamespaceMap<V> {
    /// A registry with `shards` lock shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        NamespaceMap {
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// How many lock shards back the registry.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, namespace: &str) -> &RwLock<HashMap<String, V>> {
        &self.shards[(shard_hash(namespace) % self.shards.len() as u64) as usize]
    }

    /// The value registered under `namespace`, if any (read lock on one
    /// shard).
    pub fn get(&self, namespace: &str) -> Option<V> {
        self.shard(namespace).read().get(namespace).cloned()
    }

    /// Insert `value` under `namespace` unless the name is taken:
    /// `Ok(value)` if this call inserted, `Err(existing)` if a racing
    /// (or earlier) registrant won. Lets callers that reserved resources
    /// for the insert release them on the losing path.
    pub fn try_insert(&self, namespace: &str, value: V) -> Result<V, V> {
        let mut shard = self.shard(namespace).write();
        if let Some(existing) = shard.get(namespace) {
            return Err(existing.clone());
        }
        shard.insert(namespace.to_string(), value.clone());
        Ok(value)
    }

    /// The value under `namespace`, creating it with `make` if absent.
    /// `make` runs outside any lock; under a creation race the first
    /// insert wins and the loser's value is dropped.
    pub fn get_or_insert_with(&self, namespace: &str, make: impl FnOnce() -> V) -> V {
        if let Some(found) = self.get(namespace) {
            return found;
        }
        match self.try_insert(namespace, make()) {
            Ok(inserted) => inserted,
            Err(existing) => existing,
        }
    }

    /// Remove a namespace and return its value (an `Arc` value stays
    /// valid through handles elsewhere — removal unlinks the name).
    pub fn remove(&self, namespace: &str) -> Option<V> {
        self.shard(namespace).write().remove(namespace)
    }

    /// True if `namespace` is registered.
    pub fn contains(&self, namespace: &str) -> bool {
        self.shard(namespace).read().contains_key(namespace)
    }

    /// All registered namespaces, sorted.
    pub fn namespaces(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// All registered values, in their namespaces' sorted order.
    pub fn values(&self) -> Vec<V> {
        let mut entries: Vec<(String, V)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter().map(|(_, v)| v).collect()
    }

    /// Number of registered namespaces.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sharded registry of named catalogs (namespace → [`Catalog`]).
pub struct CatalogShards {
    map: NamespaceMap<Arc<Catalog>>,
}

impl Default for CatalogShards {
    fn default() -> Self {
        CatalogShards::new(DEFAULT_CATALOG_SHARDS)
    }
}

impl CatalogShards {
    /// A registry with `shards` lock shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        CatalogShards {
            map: NamespaceMap::new(shards),
        }
    }

    /// How many lock shards back the registry.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// The catalog registered under `namespace`, if any.
    pub fn get(&self, namespace: &str) -> Option<Arc<Catalog>> {
        self.map.get(namespace)
    }

    /// The catalog under `namespace`, creating it with `make` if absent.
    pub fn get_or_insert_with(
        &self,
        namespace: &str,
        make: impl FnOnce() -> Arc<Catalog>,
    ) -> Arc<Catalog> {
        self.map.get_or_insert_with(namespace, make)
    }

    /// The catalog under `namespace`, creating an empty one if absent.
    pub fn get_or_create(&self, namespace: &str) -> Arc<Catalog> {
        self.get_or_insert_with(namespace, || Arc::new(Catalog::new()))
    }

    /// Remove a namespace and return its catalog (other handles to it
    /// stay valid — removal unlinks the name, it does not drop tables).
    pub fn remove(&self, namespace: &str) -> Option<Arc<Catalog>> {
        self.map.remove(namespace)
    }

    /// True if `namespace` is registered.
    pub fn contains(&self, namespace: &str) -> bool {
        self.map.contains(namespace)
    }

    /// All registered namespaces, sorted.
    pub fn namespaces(&self) -> Vec<String> {
        self.map.namespaces()
    }

    /// Number of registered namespaces.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::types::DataType;

    fn table(values: Vec<i64>) -> Table {
        let schema = Schema::from_pairs(&[("x", DataType::Int64)]).into_shared();
        Table::try_new(schema, vec![Column::from(values)]).unwrap()
    }

    #[test]
    fn namespaces_are_structurally_isolated() {
        let shards = CatalogShards::default();
        let alpha = shards.get_or_create("alpha");
        let beta = shards.get_or_create("beta");
        // Same table name, different contents, no interference.
        alpha.register("t", table(vec![1, 2, 3])).unwrap();
        beta.register("t", table(vec![9])).unwrap();
        assert_eq!(
            shards.get("alpha").unwrap().table("t").unwrap().num_rows(),
            3
        );
        assert_eq!(
            shards.get("beta").unwrap().table("t").unwrap().num_rows(),
            1
        );
        // A replacement in one namespace moves only that catalog's
        // generation.
        let beta_gen = beta.generation("t").unwrap();
        alpha.register_or_replace("t", table(vec![4, 5]));
        assert_eq!(beta.generation("t").unwrap(), beta_gen);
        assert_eq!(alpha.table("t").unwrap().num_rows(), 2);
    }

    #[test]
    fn get_or_create_is_idempotent_and_listing_is_sorted() {
        let shards = CatalogShards::new(4);
        let first = shards.get_or_create("zeta");
        let again = shards.get_or_create("zeta");
        assert!(Arc::ptr_eq(&first, &again), "one catalog per namespace");
        shards.get_or_create("alpha");
        assert_eq!(shards.namespaces(), vec!["alpha", "zeta"]);
        assert_eq!(shards.len(), 2);
        assert!(shards.contains("alpha"));
        assert!(!shards.contains("ghost"));
        assert!(shards.get("ghost").is_none());
    }

    #[test]
    fn remove_unlinks_but_does_not_invalidate_handles() {
        let shards = CatalogShards::default();
        let cat = shards.get_or_create("a");
        cat.register("t", table(vec![1])).unwrap();
        let removed = shards.remove("a").unwrap();
        assert!(Arc::ptr_eq(&cat, &removed));
        assert!(!shards.contains("a"));
        // The held handle still reads its tables.
        assert_eq!(cat.table("t").unwrap().num_rows(), 1);
        // Re-creating the name yields a fresh, empty catalog.
        assert!(shards.get_or_create("a").table("t").is_err());
        assert!(shards.remove("ghost").is_none());
    }

    #[test]
    fn concurrent_get_or_create_converges_on_one_catalog() {
        let shards = Arc::new(CatalogShards::new(2));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shards = shards.clone();
                std::thread::spawn(move || shards.get_or_create("hot"))
            })
            .collect();
        let catalogs: Vec<Arc<Catalog>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            catalogs.iter().all(|c| Arc::ptr_eq(c, &catalogs[0])),
            "racing creators must converge on one catalog"
        );
        assert_eq!(shards.len(), 1);
    }

    #[test]
    fn generic_map_try_insert_reports_the_winner() {
        let map: NamespaceMap<Arc<i64>> = NamespaceMap::new(2);
        let first = map.try_insert("n", Arc::new(1)).expect("first insert wins");
        assert_eq!(*first, 1);
        let second = map.try_insert("n", Arc::new(2)).expect_err("name taken");
        assert!(Arc::ptr_eq(&second, &first), "loser adopts the winner");
        assert_eq!(map.values().len(), 1);
        assert_eq!(map.namespaces(), vec!["n"]);
        // values() follows sorted namespace order.
        map.try_insert("a", Arc::new(0)).unwrap();
        assert_eq!(map.values().iter().map(|v| **v).collect::<Vec<_>>(), [0, 1]);
    }
}
