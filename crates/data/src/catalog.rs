//! The catalog: named tables plus their statistics and generations.

use crate::error::DataError;
use crate::stats::TableStats;
use crate::table::Table;
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe registry of named tables.
///
/// Plays the role of the database catalog: the SQL binder resolves table
/// names against it and the optimizer pulls [`TableStats`] from it. Stats
/// are computed once on registration (tables are immutable).
///
/// Every registration — first or replacement — stamps the entry with a
/// catalog-wide monotone **generation**. A table's generation therefore
/// changes on every replacement and never repeats, which is what lets
/// version-keyed caches above the catalog (the serving layer's result
/// cache) tell "the same `patients` table" from "a `patients` that was
/// swapped out and back".
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, CatalogEntry>,
    /// Catalog-wide generation counter; each (re-)registration takes the
    /// next value, so generations are unique across all tables and time.
    generation: u64,
}

#[derive(Debug, Clone)]
struct CatalogEntry {
    table: Arc<Table>,
    stats: Arc<TableStats>,
    generation: u64,
}

impl Catalog {
    /// New empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under `name`. Errors if the name is taken.
    pub fn register(&self, name: &str, table: Table) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.map.contains_key(name) {
            return Err(DataError::TableExists(name.to_string()));
        }
        let stats = Arc::new(TableStats::compute(&table));
        inner.generation += 1;
        let generation = inner.generation;
        inner.map.insert(
            name.to_string(),
            CatalogEntry {
                table: Arc::new(table),
                stats,
                generation,
            },
        );
        Ok(())
    }

    /// Replace (or insert) a table under `name`, advancing its
    /// generation.
    pub fn register_or_replace(&self, name: &str, table: Table) {
        let stats = Arc::new(TableStats::compute(&table));
        let mut inner = self.inner.write();
        inner.generation += 1;
        let generation = inner.generation;
        inner.map.insert(
            name.to_string(),
            CatalogEntry {
                table: Arc::new(table),
                stats,
                generation,
            },
        );
    }

    /// Remove a table. Errors if absent.
    pub fn deregister(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .map
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DataError::TableNotFound(name.to_string()))
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner
            .read()
            .map
            .get(name)
            .map(|e| e.table.clone())
            .ok_or_else(|| DataError::TableNotFound(name.to_string()))
    }

    /// Fetch precomputed statistics for a table.
    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>> {
        self.inner
            .read()
            .map
            .get(name)
            .map(|e| e.stats.clone())
            .ok_or_else(|| DataError::TableNotFound(name.to_string()))
    }

    /// The generation stamped on `name`'s current registration (`None`
    /// if absent). Strictly increases every time the table is replaced;
    /// never reused by another table.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.inner.read().map.get(name).map(|e| e.generation)
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().map.contains_key(name)
    }

    /// All registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().map.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn t() -> Table {
        let schema = Schema::from_pairs(&[("x", DataType::Int64)]).into_shared();
        Table::try_new(schema, vec![Column::from(vec![1i64, 2])]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        cat.register("a", t()).unwrap();
        assert!(cat.contains("a"));
        assert_eq!(cat.table("a").unwrap().num_rows(), 2);
        assert_eq!(cat.stats("a").unwrap().row_count, 2);
        assert!(matches!(cat.table("b"), Err(DataError::TableNotFound(_))));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let cat = Catalog::new();
        cat.register("a", t()).unwrap();
        assert!(matches!(
            cat.register("a", t()),
            Err(DataError::TableExists(_))
        ));
        // register_or_replace succeeds silently.
        cat.register_or_replace("a", t());
    }

    #[test]
    fn deregister() {
        let cat = Catalog::new();
        cat.register("a", t()).unwrap();
        cat.deregister("a").unwrap();
        assert!(!cat.contains("a"));
        assert!(cat.deregister("a").is_err());
    }

    #[test]
    fn generations_advance_on_replacement_and_never_repeat() {
        let cat = Catalog::new();
        assert_eq!(cat.generation("a"), None);
        cat.register("a", t()).unwrap();
        let g1 = cat.generation("a").unwrap();
        cat.register_or_replace("a", t());
        let g2 = cat.generation("a").unwrap();
        assert!(g2 > g1, "replacement must advance the generation");
        // Another table's generation is distinct from both.
        cat.register("b", t()).unwrap();
        let gb = cat.generation("b").unwrap();
        assert!(gb != g1 && gb != g2);
        // Deregister + re-register takes a fresh generation, not g2.
        cat.deregister("a").unwrap();
        assert_eq!(cat.generation("a"), None);
        cat.register("a", t()).unwrap();
        assert!(cat.generation("a").unwrap() > gb);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.register("zeta", t()).unwrap();
        cat.register("alpha", t()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn shared_across_threads() {
        let cat = Arc::new(Catalog::new());
        cat.register("a", t()).unwrap();
        let c2 = cat.clone();
        let handle = std::thread::spawn(move || c2.table("a").unwrap().num_rows());
        assert_eq!(handle.join().unwrap(), 2);
    }
}
