//! Typed columns: the unit of columnar storage.

use crate::error::DataError;
use crate::types::{DataType, Value};
use crate::Result;

/// A dense, typed column of values.
///
/// Columns are append-only during construction and immutable during
/// execution (operators produce new columns). All execution-facing
/// accessors (`f64_values`, `i64_values`, ...) expose the raw backing
/// slice so hot loops stay monomorphic and allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Bool(Vec<bool>),
    Utf8(Vec<String>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Utf8 => Column::Utf8(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => Column::Float64(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Utf8 => Column::Utf8(Vec::with_capacity(cap)),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Bool(_) => DataType::Bool,
            Column::Utf8(_) => DataType::Utf8,
        }
    }

    /// Read a single row as a [`Value`]. Bounds-checked.
    pub fn get(&self, idx: usize) -> Result<Value> {
        if idx >= self.len() {
            return Err(DataError::OutOfBounds {
                index: idx,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::Int64(v) => Value::Int64(v[idx]),
            Column::Float64(v) => Value::Float64(v[idx]),
            Column::Bool(v) => Value::Bool(v[idx]),
            Column::Utf8(v) => Value::Utf8(v[idx].clone()),
        })
    }

    /// Append a value; errors if the type does not match the column type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => v.push(x),
            (Column::Float64(v), Value::Float64(x)) => v.push(x),
            (Column::Float64(v), Value::Int64(x)) => v.push(x as f64),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            (Column::Utf8(v), Value::Utf8(x)) => v.push(x),
            (col, value) => {
                return Err(DataError::TypeMismatch {
                    expected: col.data_type().to_string(),
                    actual: value.data_type().to_string(),
                })
            }
        }
        Ok(())
    }

    /// Borrow the backing `f64` slice; errors for non-float columns.
    pub fn f64_values(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => Err(DataError::TypeMismatch {
                expected: "Float64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow the backing `i64` slice; errors for non-integer columns.
    pub fn i64_values(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => Err(DataError::TypeMismatch {
                expected: "Int64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow the backing `bool` slice; errors for non-bool columns.
    pub fn bool_values(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(DataError::TypeMismatch {
                expected: "Bool".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow the backing string slice; errors for non-string columns.
    pub fn utf8_values(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => Err(DataError::TypeMismatch {
                expected: "Utf8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Materialize the column as `f64` feature values.
    ///
    /// Numeric columns cast elementwise; booleans become 0.0/1.0. This is
    /// the bridge into the ML/tensor side of the system. String columns
    /// error — they must be featurized (one-hot encoded) first.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        match self {
            Column::Float64(v) => Ok(v.clone()),
            Column::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Bool(v) => Ok(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
            Column::Utf8(_) => Err(DataError::TypeMismatch {
                expected: "numeric".into(),
                actual: "Utf8".into(),
            }),
        }
    }

    /// Keep only rows where `mask` is true. `mask.len()` must equal `len()`.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                actual: mask.len(),
            });
        }
        fn keep<T: Clone>(vals: &[T], mask: &[bool]) -> Vec<T> {
            vals.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| v.clone())
                .collect()
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(keep(v, mask)),
            Column::Float64(v) => Column::Float64(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Utf8(v) => Column::Utf8(keep(v, mask)),
        })
    }

    /// Gather rows by index (used by joins and sorts). Bounds-checked.
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(DataError::OutOfBounds { index: bad, len });
        }
        fn gather<T: Clone>(vals: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| vals[i].clone()).collect()
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(gather(v, indices)),
            Column::Float64(v) => Column::Float64(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
            Column::Utf8(v) => Column::Utf8(gather(v, indices)),
        })
    }

    /// Copy out the half-open row range `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Result<Column> {
        if end > self.len() || start > end {
            return Err(DataError::OutOfBounds {
                index: end,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(v[start..end].to_vec()),
            Column::Float64(v) => Column::Float64(v[start..end].to_vec()),
            Column::Bool(v) => Column::Bool(v[start..end].to_vec()),
            Column::Utf8(v) => Column::Utf8(v[start..end].to_vec()),
        })
    }

    /// Append all rows of `other`; the types must match.
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int64(a), Column::Int64(b)) => a.extend_from_slice(b),
            (Column::Float64(a), Column::Float64(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Utf8(a), Column::Utf8(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(DataError::TypeMismatch {
                    expected: a.data_type().to_string(),
                    actual: b.data_type().to_string(),
                })
            }
        }
        Ok(())
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Int64(v)
    }
}
impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Float64(v)
    }
}
impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::Bool(v)
    }
}
impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Utf8(v)
    }
}
impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Utf8(v.into_iter().map(str::to_string).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_basic_accessors() {
        let c = Column::from(vec![1i64, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.get(1).unwrap(), Value::Int64(2));
        assert!(c.get(3).is_err());
    }

    #[test]
    fn push_type_checking() {
        let mut c = Column::empty(DataType::Float64);
        c.push(Value::Float64(1.0)).unwrap();
        // Int64 is promoted into Float64 columns.
        c.push(Value::Int64(2)).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.0, 2.0]);
        assert!(c.push(Value::from("x")).is_err());
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let c = Column::from(vec![10i64, 20, 30, 40]);
        let out = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(out.i64_values().unwrap(), &[10, 30]);
        assert!(c.filter(&[true]).is_err());
    }

    #[test]
    fn take_gathers_and_bounds_checks() {
        let c = Column::from(vec!["a", "b", "c"]);
        let out = c.take(&[2, 0, 2]).unwrap();
        assert_eq!(out.utf8_values().unwrap(), &["c", "a", "c"]);
        assert!(c.take(&[3]).is_err());
    }

    #[test]
    fn slice_range() {
        let c = Column::from(vec![1.0, 2.0, 3.0, 4.0]);
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.f64_values().unwrap(), &[2.0, 3.0]);
        assert!(c.slice(2, 5).is_err());
        assert_eq!(c.slice(2, 2).unwrap().len(), 0);
    }

    #[test]
    fn to_f64_conversion() {
        assert_eq!(
            Column::from(vec![true, false]).to_f64_vec().unwrap(),
            vec![1.0, 0.0]
        );
        assert_eq!(
            Column::from(vec![2i64, 3]).to_f64_vec().unwrap(),
            vec![2.0, 3.0]
        );
        assert!(Column::from(vec!["x"]).to_f64_vec().is_err());
    }

    #[test]
    fn extend_from_matching_types() {
        let mut a = Column::from(vec![1i64]);
        a.extend_from(&Column::from(vec![2i64, 3])).unwrap();
        assert_eq!(a.i64_values().unwrap(), &[1, 2, 3]);
        assert!(a.extend_from(&Column::from(vec![1.0])).is_err());
    }

    #[test]
    fn typed_slice_accessors_reject_wrong_type() {
        let c = Column::from(vec![1i64]);
        assert!(c.f64_values().is_err());
        assert!(c.bool_values().is_err());
        assert!(c.utf8_values().is_err());
        assert!(c.i64_values().is_ok());
    }
}
