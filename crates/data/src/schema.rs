//! Schemas: named, typed field lists.

use crate::error::DataError;
use crate::types::DataType;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// A named, typed field within a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// An ordered list of fields describing a batch or table.
///
/// Schemas are cheap to share via `Arc<Schema>`; plan nodes hold shared
/// schemas rather than cloning field lists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            fields: pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    /// Wrap in `Arc` for sharing.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Field list.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> Result<&Field> {
        self.fields.get(idx).ok_or(DataError::OutOfBounds {
            index: idx,
            len: self.fields.len(),
        })
    }

    /// Position of the field named `name`.
    ///
    /// Lookup first tries an exact match, then an unqualified match: a
    /// schema field `"pi.age"` matches a request for `"age"` when
    /// unambiguous. This mirrors SQL name resolution over joined inputs.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(pos) = self.fields.iter().position(|f| f.name == name) {
            return Ok(pos);
        }
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name
                    .rsplit_once('.')
                    .map(|(_, suffix)| suffix == name)
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [one] => Ok(*one),
            [] => Err(DataError::FieldNotFound(name.to_string())),
            _ => Err(DataError::SchemaMismatch(format!(
                "ambiguous column name: {name}"
            ))),
        }
    }

    /// True if a field with this (possibly unqualified) name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Concatenate two schemas (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Keep only the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Ok(Schema { fields })
    }

    /// All field names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("age", DataType::Float64),
            ("pregnant", DataType::Bool),
        ])
    }

    #[test]
    fn index_and_contains() {
        let s = sample();
        assert_eq!(s.index_of("age").unwrap(), 1);
        assert!(s.contains("pregnant"));
        assert!(!s.contains("missing"));
        assert!(matches!(
            s.index_of("missing"),
            Err(DataError::FieldNotFound(_))
        ));
    }

    #[test]
    fn qualified_name_resolution() {
        let s = Schema::from_pairs(&[
            ("pi.id", DataType::Int64),
            ("bt.id", DataType::Int64),
            ("pi.age", DataType::Float64),
        ]);
        // Unqualified unique suffix resolves.
        assert_eq!(s.index_of("age").unwrap(), 2);
        // Ambiguous suffix errors.
        assert!(matches!(
            s.index_of("id"),
            Err(DataError::SchemaMismatch(_))
        ));
        // Exact qualified lookup always works.
        assert_eq!(s.index_of("bt.id").unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::from_pairs(&[("x", DataType::Int64)]);
        let b = Schema::from_pairs(&[("y", DataType::Utf8)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.names(), vec!["x", "y"]);
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["pregnant", "id"]);
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn display_format() {
        let s = Schema::from_pairs(&[("a", DataType::Int64)]);
        assert_eq!(s.to_string(), "[a: Int64]");
    }
}
