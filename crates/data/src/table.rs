//! Tables: named, fully materialized relations.

use crate::batch::RecordBatch;
use crate::column::Column;
use crate::error::DataError;
use crate::schema::Schema;
use crate::types::Value;
use crate::Result;
use std::sync::Arc;

/// A fully materialized in-memory relation.
///
/// A `Table` is a single [`RecordBatch`]-shaped chunk plus helpers to split
/// it into morsels for parallel execution. Registered tables live in the
/// [`crate::Catalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    batch: RecordBatch,
}

impl Table {
    /// Create a table from a schema and columns.
    pub fn try_new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Self> {
        Ok(Table {
            batch: RecordBatch::try_new(schema, columns)?,
        })
    }

    /// Wrap an existing batch.
    pub fn from_batch(batch: RecordBatch) -> Self {
        Table { batch }
    }

    /// Build a table from rows of [`Value`]s (test/tooling convenience).
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> Result<Self> {
        let mut columns: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, rows.len()))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(DataError::LengthMismatch {
                    expected: schema.len(),
                    actual: row.len(),
                });
            }
            for (col, value) in columns.iter_mut().zip(row.iter().cloned()) {
                col.push(value)?;
            }
        }
        Table::try_new(schema, columns)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.batch.schema()
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.batch.num_rows()
    }

    /// The whole table as one batch.
    pub fn batch(&self) -> &RecordBatch {
        &self.batch
    }

    /// Consume into the underlying batch.
    pub fn into_batch(self) -> RecordBatch {
        self.batch
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        self.batch.column_by_name(name)
    }

    /// Split into morsels of at most `batch_size` rows.
    ///
    /// The last morsel may be smaller. `batch_size == 0` errors.
    pub fn morsels(&self, batch_size: usize) -> Result<Vec<RecordBatch>> {
        if batch_size == 0 {
            return Err(DataError::Internal("batch_size must be > 0".into()));
        }
        let n = self.num_rows();
        if n == 0 {
            return Ok(vec![self.batch.clone()]);
        }
        let mut out = Vec::with_capacity(n.div_ceil(batch_size));
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            out.push(self.batch.slice(start, end)?);
            start = end;
        }
        Ok(out)
    }

    /// Concatenate tables with identical schemas into one freshly owned
    /// table (rows in argument order) — the reassembly step for results
    /// that arrived as bounded chunks. Errors on an empty slice (no
    /// schema to adopt) or a schema mismatch between parts.
    pub fn concat(parts: &[Table]) -> Result<Table> {
        let first = parts
            .first()
            .ok_or_else(|| DataError::Internal("concat of zero tables".into()))?;
        let schema = first.schema().clone();
        for part in &parts[1..] {
            if part.schema().as_ref() != schema.as_ref() {
                return Err(DataError::SchemaMismatch(format!(
                    "concat expects {:?}, found {:?}",
                    schema.fields(),
                    part.schema().fields()
                )));
            }
        }
        let total: usize = parts.iter().map(Table::num_rows).sum();
        let mut columns: Vec<Column> = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, total))
            .collect();
        for part in parts {
            for (dst, src) in columns.iter_mut().zip(part.batch.columns()) {
                match (dst, src.as_ref()) {
                    (Column::Int64(d), Column::Int64(s)) => d.extend_from_slice(s),
                    (Column::Float64(d), Column::Float64(s)) => d.extend_from_slice(s),
                    (Column::Bool(d), Column::Bool(s)) => d.extend_from_slice(s),
                    (Column::Utf8(d), Column::Utf8(s)) => d.extend(s.iter().cloned()),
                    _ => {
                        return Err(DataError::Internal(
                            "column type drifted from its schema".into(),
                        ))
                    }
                }
            }
        }
        Table::try_new(schema, columns)
    }

    /// Row ranges `[start, end)` that partition the table into `parts`
    /// near-equal pieces (for parallel workers). Never returns empty ranges.
    pub fn partition_ranges(&self, parts: usize) -> Vec<(usize, usize)> {
        let n = self.num_rows();
        if n == 0 || parts == 0 {
            return vec![];
        }
        let parts = parts.min(n);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            ranges.push((start, start + len));
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample(n: usize) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]).into_shared();
        let col = Column::Int64((0..n as i64).collect());
        Table::try_new(schema, vec![col]).unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let schema =
            Schema::from_pairs(&[("name", DataType::Utf8), ("age", DataType::Int64)]).into_shared();
        let t = Table::from_rows(
            schema,
            &[
                vec![Value::from("ann"), Value::Int64(34)],
                vec![Value::from("bob"), Value::Int64(41)],
            ],
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.batch().row(1).unwrap()[0], Value::from("bob"));
    }

    #[test]
    fn from_rows_validates_width() {
        let schema = Schema::from_pairs(&[("a", DataType::Int64)]).into_shared();
        assert!(Table::from_rows(schema, &[vec![]]).is_err());
    }

    #[test]
    fn morsels_cover_all_rows() {
        let t = sample(10);
        let m = t.morsels(4).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().map(|b| b.num_rows()).sum::<usize>(), 10);
        assert_eq!(m[2].num_rows(), 2);
        assert!(t.morsels(0).is_err());
    }

    #[test]
    fn morsels_of_empty_table() {
        let t = sample(0);
        let m = t.morsels(8).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].num_rows(), 0);
    }

    #[test]
    fn concat_reassembles_chunked_tables() {
        let whole = sample(10);
        let parts: Vec<Table> = whole
            .morsels(4)
            .unwrap()
            .into_iter()
            .map(Table::from_batch)
            .collect();
        assert_eq!(Table::concat(&parts).unwrap(), whole);
        // A single (even empty) part round-trips; zero parts error.
        assert_eq!(Table::concat(&[sample(0)]).unwrap(), sample(0));
        assert!(Table::concat(&[]).is_err());
        // Schema mismatch is typed, not a silent misalignment.
        let other = Table::try_new(
            Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
            vec![Column::Float64(vec![1.0])],
        )
        .unwrap();
        assert!(Table::concat(&[sample(1), other]).is_err());
    }

    #[test]
    fn partition_ranges_balance() {
        let t = sample(10);
        let r = t.partition_ranges(3);
        assert_eq!(r, vec![(0, 4), (4, 7), (7, 10)]);
        // More parts than rows clamps to one row per part.
        let r = sample(2).partition_ranges(8);
        assert_eq!(r, vec![(0, 1), (1, 2)]);
        assert!(sample(0).partition_ranges(4).is_empty());
    }
}
