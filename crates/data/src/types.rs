//! Scalar types and values.

use crate::error::DataError;
use std::cmp::Ordering;
use std::fmt;

/// The logical type of a column or scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string (used for categorical features such as airport codes).
    Utf8,
}

impl DataType {
    /// True if the type is numeric (castable to `f64`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Bool => "Bool",
            DataType::Utf8 => "Utf8",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// `Value` is the unit of exchange between the expression evaluator, the
/// SQL literal parser, and statistics. Columnar execution never boxes rows
/// into `Value`s on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int64(i64),
    Float64(f64),
    Bool(bool),
    Utf8(String),
}

impl Value {
    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Utf8(_) => DataType::Utf8,
        }
    }

    /// Cast to `f64` if numeric (booleans become 0.0/1.0).
    pub fn as_f64(&self) -> Result<f64, DataError> {
        match self {
            Value::Int64(v) => Ok(*v as f64),
            Value::Float64(v) => Ok(*v),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Utf8(_) => Err(DataError::TypeMismatch {
                expected: "numeric".into(),
                actual: "Utf8".into(),
            }),
        }
    }

    /// Cast to `i64` if integral.
    pub fn as_i64(&self) -> Result<i64, DataError> {
        match self {
            Value::Int64(v) => Ok(*v),
            Value::Float64(v) => Ok(*v as i64),
            Value::Bool(b) => Ok(*b as i64),
            Value::Utf8(_) => Err(DataError::TypeMismatch {
                expected: "integer".into(),
                actual: "Utf8".into(),
            }),
        }
    }

    /// Interpret as boolean.
    pub fn as_bool(&self) -> Result<bool, DataError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int64(v) => Ok(*v != 0),
            other => Err(DataError::TypeMismatch {
                expected: "Bool".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as `&str` if this is a string value.
    pub fn as_str(&self) -> Result<&str, DataError> {
        match self {
            Value::Utf8(s) => Ok(s),
            other => Err(DataError::TypeMismatch {
                expected: "Utf8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Total order across values of the same type family.
    ///
    /// Numeric values compare numerically across `Int64`/`Float64`/`Bool`;
    /// strings compare lexicographically; comparing a string with a number
    /// returns `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Utf8(a), Value::Utf8(b)) => Some(a.cmp(b)),
            (Value::Utf8(_), _) | (_, Value::Utf8(_)) => None,
            (a, b) => {
                let (a, b) = (a.as_f64().ok()?, b.as_f64().ok()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Utf8(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int64(1).data_type(), DataType::Int64);
        assert_eq!(Value::Float64(1.5).data_type(), DataType::Float64);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::from("x").data_type(), DataType::Utf8);
    }

    #[test]
    fn numeric_casts() {
        assert_eq!(Value::Int64(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert_eq!(Value::Float64(2.9).as_i64().unwrap(), 2);
        assert!(Value::from("a").as_f64().is_err());
    }

    #[test]
    fn bool_casts() {
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int64(7).as_bool().unwrap());
        assert!(!Value::Int64(0).as_bool().unwrap());
        assert!(Value::Float64(1.0).as_bool().is_err());
    }

    #[test]
    fn cross_type_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Value::Int64(2).partial_cmp_value(&Value::Float64(2.5)),
            Some(Less)
        );
        assert_eq!(
            Value::from("a").partial_cmp_value(&Value::from("b")),
            Some(Less)
        );
        assert_eq!(Value::from("a").partial_cmp_value(&Value::Int64(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int64(5).to_string(), "5");
        assert_eq!(Value::from("jfk").to_string(), "'jfk'");
        assert_eq!(DataType::Float64.to_string(), "Float64");
    }

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }
}
