//! Recursive-descent SQL parser.

use crate::ast::{JoinClause, ModelSpec, Query, SelectItem, SelectStmt, TableExpr};
use crate::error::SqlError;
use crate::lexer::{lex, Token};
use crate::Result;
use raven_data::Value;
use raven_ir::{AggFunc, BinOp, Expr};

/// Reserved words that terminate expressions / cannot be column names.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "join", "on", "as", "and", "or",
    "not", "union", "all", "with", "declare", "case", "when", "then", "else", "end", "asc", "desc",
    "true", "false", "inner",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut query = p.query()?;
    query.params = p.params;
    p.eat_if(|t| *t == Token::Semicolon);
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing token: {}",
            p.peek_display()
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `?` placeholders seen so far; assigns positional indices in
    /// lexical order.
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_display(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or("EOF".into())
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {}",
                self.peek_display()
            )))
        }
    }

    fn eat_if(&mut self, pred: impl Fn(&Token) -> bool) -> bool {
        if self.peek().map(&pred).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        if self.eat_if(|t| *t == token) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {token}, found {}",
                self.peek_display()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) if !is_reserved(&s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    /// `ident` or `ident.ident`.
    fn column_ref(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_if(|t| *t == Token::Dot) {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut declares = Vec::new();
        while self.eat_kw("declare") {
            declares.push(self.declare_body()?);
            self.eat_if(|t| *t == Token::Semicolon);
        }
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                self.expect_kw("as")?;
                self.expect(Token::LParen)?;
                let select = self.select()?;
                self.expect(Token::RParen)?;
                ctes.push((name, select));
                if !self.eat_if(|t| *t == Token::Comma) {
                    break;
                }
            }
            self.eat_if(|t| *t == Token::Semicolon);
        }
        let mut selects = vec![self.select()?];
        while self.eat_kw("union") {
            self.expect_kw("all")?;
            selects.push(self.select()?);
        }
        Ok(Query {
            declares,
            ctes,
            selects,
            params: 0, // finalized by `parse` once the whole text is consumed
        })
    }

    /// After `DECLARE`: `@name [type...] = '<model>'` or
    /// `@name [type...] = ( ... '<model>' ... )` (the paper's subselect
    /// form — the model name is taken from the last string literal).
    fn declare_body(&mut self) -> Result<(String, String)> {
        let var = match self.next()? {
            Token::Variable(v) => v,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected @variable, found {other}"
                )))
            }
        };
        // Skip type tokens (e.g. VARBINARY ( MAX )) up to '='.
        while !self.eat_if(|t| *t == Token::Eq) {
            if self.at_end() {
                return Err(SqlError::Parse("DECLARE without '='".into()));
            }
            self.pos += 1;
        }
        match self.next()? {
            Token::Str(s) => Ok((var, s)),
            Token::LParen => {
                // Scan the parenthesized subselect, remembering the last
                // string literal (the model name in the paper's pattern).
                let mut depth = 1usize;
                let mut last_str = None;
                while depth > 0 {
                    match self.next()? {
                        Token::LParen => depth += 1,
                        Token::RParen => depth -= 1,
                        Token::Str(s) => last_str = Some(s),
                        _ => {}
                    }
                }
                last_str.map(|s| (var, s)).ok_or_else(|| {
                    SqlError::Parse(
                        "DECLARE subselect contains no model-name string literal".into(),
                    )
                })
            }
            other => Err(SqlError::Parse(format!(
                "expected model string or subselect, found {other}"
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut projection = vec![self.select_item()?];
        while self.eat_if(|t| *t == Token::Comma) {
            projection.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let from = self.table_expr()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw("inner");
            if !self.eat_kw("join") {
                if inner {
                    return Err(SqlError::Parse("INNER without JOIN".into()));
                }
                break;
            }
            let table = self.table_expr()?;
            self.expect_kw("on")?;
            let left_key = self.column_ref()?;
            self.expect(Token::Eq)?;
            let right_key = self.column_ref()?;
            joins.push(JoinClause {
                table,
                left_key,
                right_key,
            });
        }
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.column_ref()?);
            while self.eat_if(|t| *t == Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.column_ref()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(SqlError::Parse(format!("bad LIMIT: {other}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            joins,
            selection,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_if(|t| *t == Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // func + '('
                    let column = if self.eat_if(|t| *t == Token::Star) {
                        "*".to_string()
                    } else {
                        self.column_ref()?
                    };
                    self.expect(Token::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Aggregate {
                        func,
                        column,
                        alias,
                    });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_expr(&mut self) -> Result<TableExpr> {
        if self.eat_if(|t| *t == Token::LParen) {
            // Subquery source: `(SELECT ...) [AS] alias`.
            let query = self.select()?;
            self.expect(Token::RParen)?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(next)) = self.peek() {
                if !is_reserved(next) {
                    Some(self.ident()?)
                } else {
                    None
                }
            } else {
                None
            };
            return Ok(TableExpr::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        if self.eat_kw("predict") {
            self.expect(Token::LParen)?;
            self.expect_kw("model")?;
            self.expect(Token::Eq)?;
            let model = match self.next()? {
                Token::Str(s) => ModelSpec::Literal(s),
                Token::Variable(v) => ModelSpec::Variable(v),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected model name or @variable, found {other}"
                    )))
                }
            };
            self.expect(Token::Comma)?;
            self.expect_kw("data")?;
            self.expect(Token::Eq)?;
            let mut data = self.table_expr()?;
            // Optional `AS d` *inside* the PREDICT(...) — aliases the data.
            if self.eat_kw("as") {
                let a = self.ident()?;
                data = match data {
                    TableExpr::Named { name, .. } => TableExpr::Named {
                        name,
                        alias: Some(a),
                    },
                    TableExpr::Subquery { query, .. } => TableExpr::Subquery {
                        query,
                        alias: Some(a),
                    },
                    TableExpr::Predict {
                        model,
                        data,
                        with_columns,
                        ..
                    } => TableExpr::Predict {
                        model,
                        data,
                        with_columns,
                        alias: Some(a),
                    },
                };
            }
            self.expect(Token::RParen)?;
            // `WITH (col TYPE, ...)` declaring prediction outputs.
            let mut with_columns = Vec::new();
            if self.eat_kw("with") {
                self.expect(Token::LParen)?;
                loop {
                    let col = self.ident()?;
                    let ty = self.ident().unwrap_or_else(|_| "float".to_string());
                    with_columns.push((col, ty));
                    if !self.eat_if(|t| *t == Token::Comma) {
                        break;
                    }
                }
                self.expect(Token::RParen)?;
            }
            let alias = self.alias()?;
            Ok(TableExpr::Predict {
                model,
                data: Box::new(data),
                with_columns,
                alias,
            })
        } else {
            let name = self.ident()?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else if let Some(Token::Ident(next)) = self.peek() {
                // Implicit alias: `patient_info pi`.
                if !is_reserved(next) {
                    Some(self.ident()?)
                } else {
                    None
                }
            } else {
                None
            };
            Ok(TableExpr::Named { name, alias })
        }
    }

    // Expression grammar: or → and → not → comparison → additive →
    // multiplicative → primary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Expr::binary(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Plus,
                Some(Token::Minus) => BinOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Multiply,
                Some(Token::Slash) => BinOp::Divide,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int64(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float64(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Utf8(s)))
            }
            Some(Token::Placeholder) => {
                self.pos += 1;
                let index = self.params;
                self.params += 1;
                Ok(Expr::param(index))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.primary()?;
                Ok(match inner {
                    Expr::Literal(Value::Int64(v)) => Expr::Literal(Value::Int64(-v)),
                    Expr::Literal(Value::Float64(v)) => Expr::Literal(Value::Float64(-v)),
                    other => Expr::binary(BinOp::Minus, Expr::lit(0i64), other),
                })
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Expr::lit(true))
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Expr::lit(false))
            }
            Some(Token::Ident(word)) if !is_reserved(&word) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(SqlError::Parse(format!(
                "expected expression, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, b FROM t WHERE a > 1").unwrap();
        assert_eq!(q.selects.len(), 1);
        let s = &q.selects[0];
        assert_eq!(s.projection.len(), 2);
        assert!(s.selection.is_some());
        assert!(matches!(&s.from, TableExpr::Named { name, .. } if name == "t"));
    }

    #[test]
    fn wildcard_and_aliases() {
        let q = parse("SELECT * FROM patient_info AS pi").unwrap();
        assert_eq!(q.selects[0].projection, vec![SelectItem::Wildcard]);
        assert_eq!(q.selects[0].from.binding_name(), Some("pi"));
        // Implicit alias.
        let q = parse("SELECT * FROM patient_info pi").unwrap();
        assert_eq!(q.selects[0].from.binding_name(), Some("pi"));
    }

    #[test]
    fn joins() {
        let q = parse("SELECT * FROM a JOIN b ON a.id = b.id INNER JOIN c ON b.id = c.id").unwrap();
        let s = &q.selects[0];
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].left_key, "a.id");
        assert_eq!(s.joins[1].right_key, "c.id");
    }

    #[test]
    fn where_precedence() {
        let q = parse("SELECT * FROM t WHERE a = 1 AND b > 2 OR c < 3").unwrap();
        // AND binds tighter than OR.
        let sel = q.selects[0].selection.as_ref().unwrap();
        assert_eq!(sel.to_string(), "(((a = 1) AND (b > 2)) OR (c < 3))");
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * 2 AS x FROM t").unwrap();
        match &q.selects[0].projection[0] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(expr.to_string(), "(a + (b * 2))");
                assert_eq!(alias.as_deref(), Some("x"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let q = parse("SELECT dest, COUNT(*) AS n, AVG(delay) FROM flights GROUP BY dest").unwrap();
        let s = &q.selects[0];
        assert_eq!(s.group_by, vec!["dest"]);
        assert!(matches!(
            &s.projection[1],
            SelectItem::Aggregate { func: AggFunc::Count, column, alias: Some(a) }
                if column == "*" && a == "n"
        ));
        assert!(matches!(
            &s.projection[2],
            SelectItem::Aggregate { func: AggFunc::Avg, column, alias: None } if column == "delay"
        ));
    }

    #[test]
    fn order_and_limit() {
        let q = parse("SELECT * FROM t ORDER BY x DESC LIMIT 10").unwrap();
        let s = &q.selects[0];
        assert_eq!(s.order_by, Some(("x".to_string(), true)));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn union_all() {
        let q = parse("SELECT * FROM a UNION ALL SELECT * FROM b").unwrap();
        assert_eq!(q.selects.len(), 2);
        assert!(parse("SELECT * FROM a UNION SELECT * FROM b").is_err());
    }

    #[test]
    fn ctes() {
        let q = parse("WITH data AS (SELECT * FROM a JOIN b ON a.id = b.id) SELECT * FROM data")
            .unwrap();
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].0, "data");
    }

    #[test]
    fn predict_table_function() {
        let q = parse(
            "SELECT d.id, p.stay FROM PREDICT(MODEL = 'm', DATA = data AS d) \
             WITH (stay FLOAT) AS p WHERE p.stay > 7",
        )
        .unwrap();
        match &q.selects[0].from {
            TableExpr::Predict {
                model,
                data,
                with_columns,
                alias,
            } => {
                assert_eq!(*model, ModelSpec::Literal("m".into()));
                assert_eq!(data.binding_name(), Some("d"));
                assert_eq!(with_columns[0].0, "stay");
                assert_eq!(alias.as_deref(), Some("p"));
            }
            other => panic!("unexpected from: {other:?}"),
        }
    }

    #[test]
    fn declare_with_string() {
        let q = parse("DECLARE @m = 'duration_of_stay'; SELECT * FROM t").unwrap();
        assert_eq!(
            q.declares,
            vec![("m".to_string(), "duration_of_stay".to_string())]
        );
    }

    #[test]
    fn declare_with_subselect() {
        // The paper's exact DECLARE shape.
        let q = parse(
            "DECLARE @model varbinary(max) = (SELECT model FROM scoring_models \
             WHERE model_name = 'duration_of_stay'); SELECT * FROM t",
        )
        .unwrap();
        assert_eq!(q.declares[0].1, "duration_of_stay");
    }

    #[test]
    fn running_example_parses() {
        let q = parse(
            "DECLARE @model varbinary(max) = (SELECT model FROM scoring_models \
             WHERE model_name = 'duration_of_stay');\
             WITH data AS (\
               SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id);\
             SELECT d.id, p.length_of_stay \
             FROM PREDICT(MODEL = @model, DATA = data AS d) \
             WITH (length_of_stay FLOAT) AS p \
             WHERE d.pregnant = 1 AND p.length_of_stay > 7;",
        )
        .unwrap();
        assert_eq!(q.declares.len(), 1);
        assert_eq!(q.ctes.len(), 1);
        match &q.selects[0].from {
            TableExpr::Predict { model, .. } => {
                assert_eq!(*model, ModelSpec::Variable("model".into()));
            }
            other => panic!("unexpected from: {other:?}"),
        }
    }

    #[test]
    fn placeholders_are_numbered_in_lexical_order() {
        let q = parse("SELECT * FROM t WHERE a > ? AND b = ? OR c < ?").unwrap();
        assert_eq!(q.params, 3);
        let sel = q.selects[0].selection.as_ref().unwrap();
        let mut indices = Vec::new();
        sel.visit(&mut |e| {
            if let Expr::Parameter { index, dtype } = e {
                indices.push(*index);
                assert_eq!(*dtype, None, "parser emits untyped parameters");
            }
        });
        assert_eq!(indices, vec![0, 1, 2]);
        // No placeholders → params is 0.
        assert_eq!(parse("SELECT * FROM t").unwrap().params, 0);
    }

    #[test]
    fn placeholders_in_projection_parse() {
        let q = parse("SELECT a + ? AS bumped FROM t").unwrap();
        assert_eq!(q.params, 1);
        assert!(matches!(
            &q.selects[0].projection[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "bumped"
        ));
    }

    #[test]
    fn negative_numbers() {
        let q = parse("SELECT * FROM t WHERE x > -5").unwrap();
        let sel = q.selects[0].selection.as_ref().unwrap();
        assert_eq!(sel.to_string(), "(x > -5)");
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage +").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("DECLARE @m = (SELECT 1)").is_err()); // no model string
    }
}
