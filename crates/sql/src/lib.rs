//! # raven-sql
//!
//! SQL frontend for raven-rs: lexer, parser and binder producing
//! [`raven_ir::Plan`]s — the "translating the SQL part into the IR" half of
//! the paper's static analysis (§3.2 of *"Extending Relational Query
//! Processing with ML Inference"*, CIDR 2020).
//!
//! The dialect covers the paper's inference queries:
//!
//! ```sql
//! DECLARE @model VARBINARY(MAX) =
//!     (SELECT model FROM scoring_models WHERE model_name = 'duration_of_stay');
//! WITH data AS (
//!     SELECT * FROM patient_info AS pi
//!     JOIN blood_tests  AS bt ON pi.id = bt.id
//!     JOIN prenatal_tests AS pt ON bt.id = pt.id
//! )
//! SELECT d.id, p.length_of_stay
//! FROM PREDICT(MODEL = @model, DATA = data AS d)
//!      WITH (length_of_stay FLOAT) AS p
//! WHERE d.pregnant = 1 AND p.length_of_stay > 7;
//! ```
//!
//! plus SELECT/JOIN/WHERE/GROUP BY/ORDER BY/LIMIT/UNION ALL. The
//! `PREDICT(MODEL=..., DATA=...)` table function is SQL Server's native
//! scoring syntax (paper §5); model names resolve through a
//! [`bind::ModelResolver`] (the model store, in the full system).

pub mod ast;
pub mod bind;
pub mod error;
pub mod lexer;
pub mod parser;

pub use bind::{bind, Binder, MapModelResolver, ModelResolver};
pub use error::SqlError;
pub use parser::parse;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Parse and bind in one step.
pub fn plan_query(
    sql: &str,
    catalog: &raven_data::Catalog,
    models: &dyn ModelResolver,
) -> Result<raven_ir::Plan> {
    let query = parse(sql)?;
    bind(&query, catalog, models)
}
