//! SQL lexer.

use crate::error::SqlError;
use crate::Result;
use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// `@variable`.
    Variable(String),
    /// `?` — positional prepared-statement placeholder.
    Placeholder,
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Dot,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Token {
    /// True if this token is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Variable(s) => write!(f, "@{s}"),
            Token::Placeholder => f.write_str("?"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            // Re-escape embedded quotes so rendered tokens re-lex to the
            // same string (the server's template renderer relies on it).
            Token::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Semicolon => f.write_str(";"),
            Token::Star => f.write_str("*"),
            Token::Dot => f.write_str("."),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
        }
    }
}

/// Tokenize SQL text. Supports `--` line comments, single-quoted strings
/// with `''` escapes, and both `<>` and `!=` for inequality.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Placeholder);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                // Double-quoted identifier (SQL standard): allows names
                // with dots, e.g. the qualified aliases codegen emits.
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' {
                    end += 1;
                }
                if end >= bytes.len() {
                    return Err(SqlError::Lex {
                        offset: i,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                tokens.push(Token::Ident(input[start..end].to_string()));
                i = end + 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                offset: i,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '@' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(SqlError::Lex {
                        offset: i,
                        message: "bare '@'".into(),
                    });
                }
                tokens.push(Token::Variable(input[start..end].to_string()));
                i = end;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.'
                        && !is_float
                        && bytes
                            .get(end + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..end];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("bad float literal {text}"),
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        offset: start,
                        message: format!("bad int literal {text}"),
                    })?));
                }
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token::Ident(input[start..end].to_string()));
                i = end;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let t = lex("SELECT * FROM t WHERE a >= 1.5 AND b <> 'x';").unwrap();
        assert!(t[0].is_kw("select"));
        assert_eq!(t[1], Token::Star);
        assert!(t[2].is_kw("FROM"));
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::NotEq));
        assert!(t.contains(&Token::Str("x".into())));
        assert_eq!(*t.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn qualified_names_and_variables() {
        let t = lex("pi.age @model").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("pi".into()),
                Token::Dot,
                Token::Ident("age".into()),
                Token::Variable("model".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let t = lex("'it''s'").unwrap();
        assert_eq!(t, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("SELECT -- comment here\n 1").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Token::Int(1));
    }

    #[test]
    fn numbers() {
        let t = lex("42 3.25 7.x").unwrap();
        assert_eq!(t[0], Token::Int(42));
        assert_eq!(t[1], Token::Float(3.25));
        // "7.x" lexes as Int(7), Dot, Ident(x) — the dot is member access.
        assert_eq!(t[2], Token::Int(7));
        assert_eq!(t[3], Token::Dot);
    }

    #[test]
    fn bang_equals() {
        assert!(lex("a != b").unwrap().contains(&Token::NotEq));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@ ").is_err());
        assert!(lex("#").is_err());
    }
}
