//! The binder: AST → unified IR, resolving tables, CTEs and models.

use crate::ast::{ModelSpec, Query, SelectItem, SelectStmt, TableExpr};
use crate::error::SqlError;
use crate::Result;
use raven_data::Catalog;
use raven_ir::{AggFunc, ExecutionMode, Expr, JoinKind, ModelRef, Plan};
use raven_ml::Pipeline;
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves model names to stored pipelines (implemented by the model
/// store in the full system).
pub trait ModelResolver {
    fn resolve(&self, name: &str) -> Option<Arc<Pipeline>>;
}

/// A simple in-memory resolver (tests, examples).
#[derive(Debug, Default)]
pub struct MapModelResolver {
    models: HashMap<String, Arc<Pipeline>>,
}

impl MapModelResolver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, pipeline: Pipeline) {
        self.models.insert(name.into(), Arc::new(pipeline));
    }
}

impl ModelResolver for MapModelResolver {
    fn resolve(&self, name: &str) -> Option<Arc<Pipeline>> {
        self.models.get(name).cloned()
    }
}

/// Bind a parsed query against a catalog and model resolver.
pub fn bind(query: &Query, catalog: &Catalog, models: &dyn ModelResolver) -> Result<Plan> {
    Binder::new(catalog, models).bind_query(query)
}

/// Stateful binder (CTE and DECLARE scopes).
pub struct Binder<'a> {
    catalog: &'a Catalog,
    models: &'a dyn ModelResolver,
    ctes: HashMap<String, Plan>,
    declares: HashMap<String, String>,
}

impl<'a> Binder<'a> {
    pub fn new(catalog: &'a Catalog, models: &'a dyn ModelResolver) -> Self {
        Binder {
            catalog,
            models,
            ctes: HashMap::new(),
            declares: HashMap::new(),
        }
    }

    /// Bind a full query.
    pub fn bind_query(&mut self, query: &Query) -> Result<Plan> {
        for (var, model) in &query.declares {
            self.declares.insert(var.clone(), model.clone());
        }
        for (name, select) in &query.ctes {
            let plan = self.bind_select(select)?;
            self.ctes.insert(name.clone(), plan);
        }
        let mut branches = query
            .selects
            .iter()
            .map(|s| self.bind_select(s))
            .collect::<Result<Vec<_>>>()?;
        let plan = if branches.len() == 1 {
            branches.pop().expect("non-empty")
        } else {
            Plan::Union { inputs: branches }
        };
        // Validate the full plan types/schemas eagerly.
        plan.schema()?;
        Ok(plan)
    }

    fn bind_select(&mut self, select: &SelectStmt) -> Result<Plan> {
        let mut plan = self.bind_table(&select.from)?;
        for (ji, join) in select.joins.iter().enumerate() {
            let right = self.bind_table(&join.table)?;
            // Keys referenced by later joins must survive this join.
            let later_keys: std::collections::HashSet<&str> = select.joins[ji + 1..]
                .iter()
                .flat_map(|j| [j.left_key.as_str(), j.right_key.as_str()])
                .collect();
            plan = join_dropping_duplicate_key(
                plan,
                right,
                &join.left_key,
                &join.right_key,
                &later_keys,
            )?;
        }
        if let Some(predicate) = &select.selection {
            let predicate = infer_parameter_types(predicate, &plan)?;
            validate_columns(&predicate, &plan)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let has_aggregates = select
            .projection
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        if has_aggregates || !select.group_by.is_empty() {
            plan = self.bind_aggregate(select, plan)?;
        } else if !matches!(select.projection.as_slice(), [SelectItem::Wildcard]) {
            // Plain projection.
            let mut exprs = Vec::new();
            for item in &select.projection {
                match item {
                    SelectItem::Wildcard => {
                        // `a.*`-style mixing: expand all input columns.
                        let schema = plan.schema()?;
                        for f in schema.fields() {
                            exprs.push((Expr::col(f.name.clone()), f.name.clone()));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let expr = infer_parameter_types(expr, &plan)?;
                        validate_columns(&expr, &plan)?;
                        let name = output_name(&expr, alias.as_deref());
                        exprs.push((expr, name));
                    }
                    SelectItem::Aggregate { .. } => unreachable!("handled above"),
                }
            }
            plan = Plan::Project {
                input: Box::new(plan),
                exprs,
            };
        }

        if let Some((column, descending)) = &select.order_by {
            plan = Plan::Sort {
                input: Box::new(plan),
                column: column.clone(),
                descending: *descending,
            };
        }
        if let Some(fetch) = select.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                fetch,
            };
        }
        Ok(plan)
    }

    fn bind_aggregate(&mut self, select: &SelectStmt, input: Plan) -> Result<Plan> {
        let input_schema = input.schema()?;
        let mut aggregates = Vec::new();
        let mut output_order: Vec<String> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Aggregate {
                    func,
                    column,
                    alias,
                } => {
                    let col = if column == "*" {
                        if *func != AggFunc::Count {
                            return Err(SqlError::Bind(format!(
                                "{}(*) is only valid for COUNT",
                                func.sql()
                            )));
                        }
                        input_schema
                            .fields()
                            .first()
                            .map(|f| f.name.clone())
                            .ok_or_else(|| SqlError::Bind("aggregate over empty schema".into()))?
                    } else {
                        input_schema.index_of(column)?;
                        column.clone()
                    };
                    let name = alias.clone().unwrap_or_else(|| {
                        format!("{}({})", func.sql().to_ascii_lowercase(), column)
                    });
                    aggregates.push((*func, col, name.clone()));
                    output_order.push(name);
                }
                SelectItem::Expr { expr, alias } => {
                    let Expr::Column(col) = expr else {
                        return Err(SqlError::Bind(
                            "non-column expressions in GROUP BY selects are not supported".into(),
                        ));
                    };
                    if !select.group_by.iter().any(|g| g == col) {
                        return Err(SqlError::Bind(format!(
                            "column {col} must appear in GROUP BY"
                        )));
                    }
                    output_order.push(output_name(expr, alias.as_deref()));
                }
                SelectItem::Wildcard => {
                    return Err(SqlError::Bind(
                        "SELECT * cannot be combined with aggregates".into(),
                    ))
                }
            }
        }
        for g in &select.group_by {
            input_schema.index_of(g)?;
        }
        let agg = Plan::Aggregate {
            input: Box::new(input),
            group_by: select.group_by.clone(),
            aggregates,
        };
        // Reorder/rename to the select-list order.
        let mut exprs = Vec::new();
        for (item, name) in select.projection.iter().zip(&output_order) {
            match item {
                SelectItem::Expr { expr, alias } => {
                    exprs.push((expr.clone(), output_name(expr, alias.as_deref())));
                }
                SelectItem::Aggregate { .. } => {
                    exprs.push((Expr::col(name.clone()), name.clone()));
                }
                SelectItem::Wildcard => unreachable!(),
            }
        }
        Ok(Plan::Project {
            input: Box::new(agg),
            exprs,
        })
    }

    fn bind_table(&mut self, table: &TableExpr) -> Result<Plan> {
        match table {
            TableExpr::Named { name, alias } => {
                let base = if let Some(cte) = self.ctes.get(name) {
                    cte.clone()
                } else {
                    let t = self
                        .catalog
                        .table(name)
                        .map_err(|_| SqlError::Bind(format!("table or CTE not found: {name}")))?;
                    Plan::Scan {
                        table: name.clone(),
                        schema: t.schema().clone(),
                    }
                };
                match alias {
                    Some(a) => alias_rename(base, a),
                    None => Ok(base),
                }
            }
            TableExpr::Subquery { query, alias } => {
                let plan = self.bind_select(query)?;
                match alias {
                    Some(a) => alias_rename(plan, a),
                    None => Ok(plan),
                }
            }
            TableExpr::Predict {
                model,
                data,
                with_columns,
                alias,
            } => {
                let input = self.bind_table(data)?;
                let model_name = match model {
                    ModelSpec::Literal(name) => name.clone(),
                    ModelSpec::Variable(var) => self
                        .declares
                        .get(var)
                        .cloned()
                        .ok_or_else(|| SqlError::Bind(format!("undeclared variable @{var}")))?,
                };
                let pipeline = self
                    .models
                    .resolve(&model_name)
                    .ok_or_else(|| SqlError::Bind(format!("model not found: {model_name}")))?;
                // Check the pipeline's input columns exist.
                let schema = input.schema()?;
                for col in pipeline.input_columns() {
                    schema.index_of(col).map_err(|_| {
                        SqlError::Bind(format!(
                            "model {model_name} needs column {col}, absent from PREDICT data"
                        ))
                    })?;
                }
                let out_col = with_columns
                    .first()
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| "prediction".to_string());
                if with_columns.len() > 1 {
                    return Err(SqlError::Bind(
                        "PREDICT WITH clauses with multiple output columns are not supported"
                            .into(),
                    ));
                }
                let output = match alias {
                    Some(a) => format!("{a}.{out_col}"),
                    None => out_col,
                };
                Ok(Plan::Predict {
                    input: Box::new(input),
                    model: ModelRef {
                        name: model_name,
                        pipeline,
                    },
                    output,
                    mode: ExecutionMode::InProcess,
                })
            }
        }
    }
}

/// Default output name for a projected expression.
fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    match alias {
        Some(a) => a.to_string(),
        None => match expr {
            Expr::Column(c) => c.clone(),
            other => other.to_string(),
        },
    }
}

/// Give every untyped `?` placeholder in `expr` a concrete type inferred
/// from its context against the plan's schema: a parameter compared with
/// (or combined arithmetically with) a typed sibling takes the sibling's
/// type; operands of AND/OR/NOT become `Bool`. A parameter with no typed
/// context — e.g. a bare `SELECT ?` projection — is a bind error, so
/// cached template plans always know their parameter signature.
fn infer_parameter_types(expr: &Expr, plan: &Plan) -> Result<Expr> {
    let schema = plan.schema()?;
    infer_types(expr.clone(), &schema, None)
}

fn infer_types(
    expr: Expr,
    schema: &raven_data::Schema,
    expected: Option<raven_data::DataType>,
) -> Result<Expr> {
    use raven_data::DataType;
    // The type of a subtree with no untyped parameters, if derivable.
    let known = |e: &Expr, schema: &raven_data::Schema| e.data_type(schema).ok();
    match expr {
        Expr::Parameter { index, dtype: None } => {
            let dtype = expected.ok_or_else(|| {
                SqlError::Bind(format!(
                    "cannot infer the type of parameter ?{}: compare or combine \
                     it with a typed column or literal",
                    index + 1
                ))
            })?;
            Ok(Expr::typed_param(index, dtype))
        }
        done @ Expr::Parameter { .. } => Ok(done),
        Expr::Binary { op, left, right } => {
            let (l, r) = (*left, *right);
            let (lx, rx) = if op.is_logical() {
                (Some(DataType::Bool), Some(DataType::Bool))
            } else {
                // Comparison/arithmetic: each side types from its sibling,
                // falling back (for arithmetic) to the surrounding context.
                let pass_down = if op.is_comparison() { None } else { expected };
                (
                    known(&r, schema).or(pass_down),
                    known(&l, schema).or(pass_down),
                )
            };
            Ok(Expr::Binary {
                op,
                left: Box::new(infer_types(l, schema, lx)?),
                right: Box::new(infer_types(r, schema, rx)?),
            })
        }
        Expr::Not(inner) => Ok(Expr::Not(Box::new(infer_types(
            *inner,
            schema,
            Some(DataType::Bool),
        )?))),
        Expr::Case {
            branches,
            else_expr,
        } => {
            let branches = branches
                .into_iter()
                .map(|(c, v)| {
                    Ok((
                        infer_types(c, schema, Some(DataType::Bool))?,
                        infer_types(v, schema, None)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(Expr::Case {
                branches,
                else_expr: Box::new(infer_types(*else_expr, schema, None)?),
            })
        }
        leaf @ (Expr::Column(_) | Expr::Literal(_)) => Ok(leaf),
    }
}

/// Check that every column an expression references exists in the plan's
/// schema (with a SQL-flavored error).
fn validate_columns(expr: &Expr, plan: &Plan) -> Result<()> {
    let schema = plan.schema()?;
    for col in expr.referenced_columns() {
        schema
            .index_of(&col)
            .map_err(|e| SqlError::Bind(e.to_string()))?;
    }
    Ok(())
}

/// Rename every output column of `plan` to `alias.<last-segment>`.
///
/// Binding an alias re-qualifies the whole row, matching how `data AS d`
/// makes the CTE's columns addressable as `d.x` in the paper's query.
/// Colliding renames (duplicated equi-join keys that both survive, e.g.
/// `pi.id` and `bt.id` both becoming `d.id`) keep the first occurrence —
/// they hold identical values after an inner equi-join.
fn alias_rename(plan: Plan, alias: &str) -> Result<Plan> {
    let schema = plan.schema()?;
    let mut exprs: Vec<(Expr, String)> = Vec::with_capacity(schema.len());
    for f in schema.fields() {
        let last = f.name.rsplit_once('.').map(|(_, s)| s).unwrap_or(&f.name);
        let new_name = format!("{alias}.{last}");
        if exprs.iter().any(|(_, n)| n == &new_name) {
            continue;
        }
        exprs.push((Expr::col(f.name.clone()), new_name));
    }
    Ok(Plan::Project {
        input: Box::new(plan),
        exprs,
    })
}

/// Join two plans, dropping the duplicated right-side key column so
/// suffix-based name resolution stays unambiguous downstream — unless a
/// later join still needs the right key.
fn join_dropping_duplicate_key(
    left: Plan,
    right: Plan,
    left_key: &str,
    right_key: &str,
    later_keys: &std::collections::HashSet<&str>,
) -> Result<Plan> {
    // Validate keys.
    left.schema()?
        .index_of(left_key)
        .map_err(|e| SqlError::Bind(format!("join key: {e}")))?;
    right
        .schema()?
        .index_of(right_key)
        .map_err(|e| SqlError::Bind(format!("join key: {e}")))?;
    let joined = Plan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_key: left_key.to_string(),
        right_key: right_key.to_string(),
        kind: JoinKind::Inner,
    };
    if later_keys.contains(right_key) {
        // A later join references the right key; keep the full row.
        return Ok(joined);
    }
    let schema = joined.schema()?;
    let right_key_idx = {
        // The duplicate is the *second* occurrence (right side).
        let mut seen = false;
        let mut idx = None;
        for (i, f) in schema.fields().iter().enumerate() {
            let matches_key = f.name == right_key
                || f.name
                    .rsplit_once('.')
                    .map(|(_, s)| s == right_key)
                    .unwrap_or(false);
            if matches_key {
                if seen {
                    idx = Some(i);
                }
                seen = true;
            }
        }
        idx
    };
    let mut exprs = Vec::new();
    for (i, f) in schema.fields().iter().enumerate() {
        if Some(i) == right_key_idx {
            continue;
        }
        // Skip exact right_key match when it's distinct from left_key.
        if f.name == right_key && right_key != left_key {
            continue;
        }
        exprs.push((Expr::col(f.name.clone()), f.name.clone()));
    }
    Ok(Plan::Project {
        input: Box::new(joined),
        exprs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use raven_data::{Column, DataType, Schema, Table};
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Transform};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "patient_info",
            Table::try_new(
                Schema::from_pairs(&[
                    ("id", DataType::Int64),
                    ("age", DataType::Float64),
                    ("pregnant", DataType::Int64),
                ])
                .into_shared(),
                vec![
                    Column::from(vec![1i64, 2]),
                    Column::from(vec![30.0, 40.0]),
                    Column::from(vec![1i64, 0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "blood_tests",
            Table::try_new(
                Schema::from_pairs(&[("id", DataType::Int64), ("bp", DataType::Float64)])
                    .into_shared(),
                vec![
                    Column::from(vec![1i64, 2]),
                    Column::from(vec![120.0, 150.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn models() -> MapModelResolver {
        let mut m = MapModelResolver::new();
        m.insert(
            "stay",
            Pipeline::new(
                vec![
                    FeatureStep::new("age", Transform::Identity),
                    FeatureStep::new("bp", Transform::Identity),
                ],
                Estimator::Linear(
                    LinearModel::new(vec![0.1, 0.01], 0.0, LinearKind::Regression).unwrap(),
                ),
            )
            .unwrap(),
        );
        m
    }

    fn plan(sql: &str) -> Result<Plan> {
        let cat = catalog();
        let m = models();
        bind(&parse(sql)?, &cat, &m)
    }

    #[test]
    fn simple_scan_binds() {
        let p = plan("SELECT * FROM patient_info").unwrap();
        assert!(matches!(p, Plan::Scan { .. }));
    }

    #[test]
    fn alias_qualifies_columns() {
        let p = plan("SELECT pi.age FROM patient_info AS pi").unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.names(), vec!["pi.age"]);
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(plan("SELECT * FROM nope"), Err(SqlError::Bind(_))));
        assert!(matches!(
            plan("SELECT ghost FROM patient_info"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            plan("SELECT * FROM patient_info WHERE ghost > 1"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn join_drops_duplicate_key() {
        let p = plan("SELECT * FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id")
            .unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.names(), vec!["pi.id", "pi.age", "pi.pregnant", "bt.bp"]);
        // Unambiguous suffix lookup now works.
        assert!(s.index_of("bp").is_ok());
        assert!(s.index_of("id").is_ok());
    }

    #[test]
    fn predict_binds_model() {
        let p = plan(
            "SELECT * FROM PREDICT(MODEL = 'stay', \
             DATA = patient_info AS d) WITH (los FLOAT) AS p WHERE p.los > 1",
        );
        // The model needs bp, absent from patient_info alone → bind error.
        assert!(matches!(p, Err(SqlError::Bind(msg)) if msg.contains("bp")));

        let p = plan(
            "WITH data AS (SELECT * FROM patient_info AS pi \
             JOIN blood_tests AS bt ON pi.id = bt.id) \
             SELECT d.id, p.los FROM PREDICT(MODEL = 'stay', DATA = data AS d) \
             WITH (los FLOAT) AS p WHERE p.los > 1",
        )
        .unwrap();
        let mut found_predict = false;
        p.visit(&mut |n| {
            if let Plan::Predict { model, output, .. } = n {
                found_predict = true;
                assert_eq!(model.name, "stay");
                assert_eq!(output, "p.los");
            }
        });
        assert!(found_predict);
    }

    #[test]
    fn declare_variable_resolves() {
        let p = plan(
            "DECLARE @m = 'stay'; \
             WITH data AS (SELECT * FROM patient_info AS pi \
             JOIN blood_tests AS bt ON pi.id = bt.id) \
             SELECT * FROM PREDICT(MODEL = @m, DATA = data AS d) WITH (los FLOAT) AS p",
        )
        .unwrap();
        assert!(p.scanned_tables().contains(&"patient_info".to_string()));
        assert!(matches!(
            plan("SELECT * FROM PREDICT(MODEL = @nope, DATA = patient_info) WITH (x FLOAT)"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn unknown_model() {
        let err =
            plan("SELECT * FROM PREDICT(MODEL = 'ghost', DATA = patient_info AS d) WITH (x FLOAT)");
        assert!(matches!(err, Err(SqlError::Bind(msg)) if msg.contains("ghost")));
    }

    #[test]
    fn aggregate_binding() {
        let p = plan(
            "SELECT pregnant, COUNT(*) AS n, AVG(age) AS mean_age \
             FROM patient_info GROUP BY pregnant",
        )
        .unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.names(), vec!["pregnant", "n", "mean_age"]);
    }

    #[test]
    fn aggregate_errors() {
        assert!(matches!(
            plan("SELECT age FROM patient_info GROUP BY pregnant"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            plan("SELECT SUM(*) FROM patient_info"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            plan("SELECT *, COUNT(*) FROM patient_info"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn predicate_parameters_take_the_column_type() {
        use raven_data::DataType;
        let p = plan("SELECT * FROM patient_info WHERE age > ? AND pregnant = ?").unwrap();
        assert_eq!(p.parameter_count(), 2);
        let mut dtypes = Vec::new();
        let Plan::Filter { predicate, .. } = &p else {
            panic!("expected filter, got\n{p}");
        };
        predicate.visit(&mut |e| {
            if let raven_ir::Expr::Parameter { index, dtype } = e {
                dtypes.push((*index, *dtype));
            }
        });
        // `age` is Float64, `pregnant` is Int64.
        assert_eq!(
            dtypes,
            vec![(0, Some(DataType::Float64)), (1, Some(DataType::Int64))]
        );
    }

    #[test]
    fn projection_parameters_need_a_typed_context() {
        // Combined with a typed column: inferable.
        let p = plan("SELECT age + ? AS bumped FROM patient_info").unwrap();
        assert_eq!(p.parameter_count(), 1);
        assert_eq!(p.schema().unwrap().names(), vec!["bumped"]);
        // Bare placeholder: no context to infer a type from.
        let err = plan("SELECT ? AS x FROM patient_info").unwrap_err();
        assert!(
            err.to_string()
                .contains("cannot infer the type of parameter ?1"),
            "{err}"
        );
    }

    #[test]
    fn parameter_predicates_reach_predict_inputs() {
        // The paper's shape, parameterized: the predicate over the model
        // output and the data predicate both carry placeholders.
        let p = plan(
            "WITH data AS (SELECT * FROM patient_info AS pi \
             JOIN blood_tests AS bt ON pi.id = bt.id) \
             SELECT d.id, p.los FROM PREDICT(MODEL = 'stay', DATA = data AS d) \
             WITH (los FLOAT) AS p WHERE d.age > ? AND p.los > ?",
        )
        .unwrap();
        assert_eq!(p.parameter_count(), 2);
    }

    #[test]
    fn union_binds() {
        let p = plan("SELECT age FROM patient_info UNION ALL SELECT bp FROM blood_tests").unwrap();
        assert!(matches!(p, Plan::Union { .. }));
    }

    #[test]
    fn order_limit_plan_shape() {
        let p = plan("SELECT * FROM patient_info ORDER BY age DESC LIMIT 1").unwrap();
        assert!(matches!(p, Plan::Limit { .. }));
        let Plan::Limit { input, .. } = p else {
            unreachable!()
        };
        assert!(matches!(*input, Plan::Sort { .. }));
    }
}
