//! SQL abstract syntax.

use raven_ir::{AggFunc, Expr};

/// A full statement: optional model-variable declarations, optional CTEs,
/// then a (possibly UNION ALL'ed) select body.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `DECLARE @name ... = '<model>'` bindings, in order.
    pub declares: Vec<(String, String)>,
    /// `WITH name AS (...)` clauses, in order.
    pub ctes: Vec<(String, SelectStmt)>,
    /// UNION ALL branches (one element = plain SELECT).
    pub selects: Vec<SelectStmt>,
    /// How many `?` positional placeholders the statement contains
    /// (indices `0..params`, assigned in lexical order by the parser).
    pub params: usize,
}

/// One SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub projection: Vec<SelectItem>,
    pub from: TableExpr,
    pub joins: Vec<JoinClause>,
    pub selection: Option<Expr>,
    pub group_by: Vec<String>,
    pub order_by: Option<(String, bool)>, // (column, descending)
    pub limit: Option<usize>,
}

/// An item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// Aggregate call `FUNC(col)` (or `COUNT(*)` with column `"*"`).
    Aggregate {
        func: AggFunc,
        column: String,
        alias: Option<String>,
    },
}

/// A table source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// Base table or CTE reference.
    Named { name: String, alias: Option<String> },
    /// Parenthesized subquery: `(SELECT ...) AS alias`.
    Subquery {
        query: Box<SelectStmt>,
        alias: Option<String>,
    },
    /// SQL Server's `PREDICT(MODEL = ..., DATA = <source> AS d) WITH
    /// (col FLOAT) AS p` table function.
    Predict {
        model: ModelSpec,
        data: Box<TableExpr>,
        /// Declared output columns: (name, type name).
        with_columns: Vec<(String, String)>,
        alias: Option<String>,
    },
}

impl TableExpr {
    /// The alias (or name) this source is known by.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableExpr::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableExpr::Subquery { alias, .. } => alias.as_deref(),
            TableExpr::Predict { alias, .. } => alias.as_deref(),
        }
    }
}

/// How the model is referenced in `PREDICT`.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// `MODEL = 'name'`.
    Literal(String),
    /// `MODEL = @variable` (resolved through `DECLARE`).
    Variable(String),
}

/// `JOIN <table> ON <left> = <right>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableExpr,
    pub left_key: String,
    pub right_key: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_names() {
        let t = TableExpr::Named {
            name: "patient_info".into(),
            alias: Some("pi".into()),
        };
        assert_eq!(t.binding_name(), Some("pi"));
        let t = TableExpr::Named {
            name: "t".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), Some("t"));
        let p = TableExpr::Predict {
            model: ModelSpec::Literal("m".into()),
            data: Box::new(t),
            with_columns: vec![],
            alias: None,
        };
        assert_eq!(p.binding_name(), None);
    }
}
