//! Error type for the SQL frontend.

use std::fmt;

/// Errors produced by lexing, parsing or binding SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex { offset: usize, message: String },
    /// Parse error with the offending token (or EOF).
    Parse(String),
    /// Name-resolution/semantic error.
    Bind(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Bind(msg) => write!(f, "bind error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<raven_data::DataError> for SqlError {
    fn from(e: raven_data::DataError) -> Self {
        SqlError::Bind(e.to_string())
    }
}

impl From<raven_ir::IrError> for SqlError {
    fn from(e: raven_ir::IrError) -> Self {
        SqlError::Bind(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::Lex {
            offset: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("byte 3"));
    }
}
