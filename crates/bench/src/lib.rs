//! # raven-bench
//!
//! Benchmark harness reproducing **every table and figure** of the Raven
//! paper's evaluation (*"Extending Relational Query Processing with ML
//! Inference"*, CIDR 2020). See `EXPERIMENTS.md` for the paper-vs-measured
//! record.
//!
//! Two targets:
//! * `benches/figures.rs` — a plain harness (one paper figure per section)
//!   that prints the same rows/series the paper reports:
//!   Fig. 2(a) model-projection pushdown, Fig. 2(b) model clustering,
//!   Fig. 2(c) model inlining, Fig. 2(d) NN translation (CPU + simulated
//!   GPU), Fig. 3 Raven vs ORT vs Raven Ext, plus the in-text numbers
//!   (§3.2 static-analysis latency, §4.1 pruning percentages, §5 batching).
//! * `benches/micro.rs` — Criterion micro-benchmarks of individual rules
//!   and substrates, including rule on/off ablations.
//!
//! Environment knobs:
//! * `RAVEN_BENCH_FULL=1` — run the paper's full dataset sizes (up to 10M
//!   rows); the default caps sweeps at 1M to keep `cargo bench` under a
//!   few minutes.

use std::time::{Duration, Instant};

/// Run `f` `runs` times after one warm-up; returns the mean duration.
pub fn time_mean<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let _ = f(); // warm-up
    let start = Instant::now();
    for _ in 0..runs.max(1) {
        std::hint::black_box(f());
    }
    start.elapsed() / runs.max(1) as u32
}

/// Like [`time_mean`] but without the warm-up run (for cold-start
/// measurements such as standalone-runtime model loading).
pub fn time_mean_cold<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..runs.max(1) {
        std::hint::black_box(f());
    }
    start.elapsed() / runs.max(1) as u32
}

/// `true` when the full paper-scale sweep was requested.
pub fn full_scale() -> bool {
    std::env::var("RAVEN_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Dataset sizes for a sweep: the paper's log scale, capped by mode.
pub fn sweep_sizes(max_default: usize) -> Vec<usize> {
    let all = [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000];
    let cap = if full_scale() {
        10_000_000
    } else {
        max_default
    };
    all.into_iter().filter(|&n| n <= cap).collect()
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mean_measures() {
        let d = time_mean(3, || std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(2));
    }

    #[test]
    fn sweep_respects_cap() {
        assert_eq!(sweep_sizes(100_000), vec![1_000, 10_000, 100_000]);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }
}
