//! Figure-by-figure reproduction of the Raven paper's evaluation.
//!
//! Run with `cargo bench -p raven-bench --bench figures`. Each section
//! prints the series of one paper figure (or in-text number); the
//! paper-vs-measured record lives in `EXPERIMENTS.md`.
//!
//! Default sweeps cap at 1M rows; set `RAVEN_BENCH_FULL=1` for the paper's
//! full 10M-row Fig. 3 sweep.

use raven_bench::{full_scale, ms, sweep_sizes, time_mean, time_mean_cold};
use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{flights, hospital, train};
use raven_ir::{Device, ExecutionMode, Plan};
use raven_ml::translate::{translate_pipeline, INPUT_NAME};
use raven_ml::{Estimator, Pipeline};
use raven_opt::rules::clustering::{specialize_per_cluster, ClusteredModel};
use raven_opt::rules::model_utils::shrink_pipeline;
use raven_opt::RuleSet;
use raven_tensor::{
    serialize as graph_serialize, Device as TensorDevice, InferenceSession, SessionOptions, Tensor,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("=== raven-rs: reproduction of the paper's evaluation ===");
    println!(
        "mode: {} (set RAVEN_BENCH_FULL=1 for paper-scale sweeps)\n",
        if full_scale() { "FULL" } else { "default" }
    );
    fig2a_model_projection_pushdown();
    fig2b_model_clustering();
    fig2c_model_inlining();
    fig2d_nn_translation();
    fig3_raven_vs_ort();
    text_static_analysis();
    text_predicate_pruning();
    text_categorical_pruning();
    text_batching();
    println!("\n=== done; record results in EXPERIMENTS.md ===");
}

/// Paper Fig. 2(a): model-projection pushdown on the flight-delay
/// logistic regression at two L1-induced sparsity levels
/// (paper: 41.75% → ~1.7×, 80.96% → ~5.3×).
fn fig2a_model_projection_pushdown() {
    println!("--- Fig 2(a): model-projection pushdown (flight delay, LR) ---");
    let n = if full_scale() { 1_000_000 } else { 300_000 };
    let data = flights::generate(n, &flights::FlightParams::default());
    let train_data = flights::generate(30_000, &flights::FlightParams::default());
    for (label, l1) in [("moderate-L1", 0.004f64), ("strong-L1", 0.02)] {
        let model = train::flight_logistic(&train_data, l1, 250).expect("train");
        let sparsity = match model.estimator() {
            Estimator::Linear(m) => m.sparsity() * 100.0,
            _ => unreachable!(),
        };
        let shrunk = shrink_pipeline(&model)
            .expect("shrink")
            .unwrap_or_else(|| model.clone());
        let batch = data.flights.batch();
        let baseline = time_mean(3, || model.predict(batch).expect("predict"));
        let pushed = time_mean(3, || shrunk.predict(batch).expect("predict"));
        println!(
            "{label:<12} sparsity {sparsity:>5.1}%  features {}->{}  \
             baseline {:>9} ms  pushdown {:>9} ms  speedup {:.2}x",
            model.n_features(),
            shrunk.n_features(),
            ms(baseline),
            ms(pushed),
            baseline.as_secs_f64() / pushed.as_secs_f64()
        );
    }
    println!();
}

/// Paper Fig. 2(b): model clustering on flight delay (gains up to 54%,
/// growing with cluster count; compile time negligible) plus the hospital
/// counter-example (no benefit: categoricals already binary).
fn fig2b_model_clustering() {
    println!("--- Fig 2(b): model clustering ---");
    let n = if full_scale() { 700_000 } else { 200_000 };
    let data = flights::generate(n, &flights::FlightParams::default());
    let train_data = flights::generate(30_000, &flights::FlightParams::default());
    let model = train::flight_logistic(&train_data, 0.002, 250).expect("train");
    let batch = data.flights.batch();
    let sample = batch.slice(0, 20_000.min(n)).expect("sample");

    let baseline = time_mean(3, || model.predict(batch).expect("predict"));
    println!("flight delay ({n} tuples): baseline {} ms", ms(baseline));
    for k in [1usize, 2, 4, 8, 16, 32] {
        let clustered = specialize_per_cluster(
            &model,
            &sample,
            k,
            42,
            &["origin".to_string(), "dest".to_string()],
        )
        .expect("cluster");
        let t = time_mean(3, || score_clustered(&model, &clustered, batch));
        println!(
            "  k={k:<3} inference {:>9} ms ({:+.1}% vs baseline)  compile {:>8} ms",
            ms(t),
            (t.as_secs_f64() / baseline.as_secs_f64() - 1.0) * 100.0,
            ms(clustered.compile_time)
        );
    }

    let hdata = hospital::generate(100_000, 42);
    let hmodel = train::hospital_tree(&hospital::generate(20_000, 42), 8).expect("train");
    let hbatch = hdata.joined_batch();
    let hsample = hbatch.slice(0, 10_000).expect("sample");
    let hbase = time_mean(3, || hmodel.predict(&hbatch).expect("predict"));
    let hcluster = specialize_per_cluster(
        &hmodel,
        &hsample,
        8,
        42,
        &["gender".to_string(), "pregnant".to_string()],
    )
    .expect("cluster");
    let ht = time_mean(3, || score_clustered(&hmodel, &hcluster, &hbatch));
    println!(
        "hospital (100K tuples): baseline {} ms, clustered k=8 {} ms \
         ({:+.1}%; paper predicts no benefit)\n",
        ms(hbase),
        ms(ht),
        (ht.as_secs_f64() / hbase.as_secs_f64() - 1.0) * 100.0
    );
}

/// Clustered scoring: route rows by cluster, score with specialized models.
fn score_clustered(
    original: &Pipeline,
    clustered: &ClusteredModel,
    batch: &raven_data::RecordBatch,
) -> Vec<f64> {
    let rows = batch.num_rows();
    let routing =
        raven_opt::rules::clustering::routing_matrix(original, batch, &clustered.route_columns)
            .expect("routing");
    let assignment = clustered
        .kmeans
        .assign_batch(&routing, rows)
        .expect("assign");
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); clustered.models.len()];
    for (r, &c) in assignment.iter().enumerate() {
        groups[c].push(r);
    }
    let mut out = vec![0.0; rows];
    for (c, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        if group.len() == rows {
            return clustered.models[c].predict(batch).expect("predict");
        }
        let sub = batch.take(group).expect("take");
        let preds = clustered.models[c].predict(&sub).expect("predict");
        for (&r, p) in group.iter().zip(preds) {
            out[r] = p;
        }
    }
    out
}

/// Paper Fig. 2(c): model inlining — decision tree as SQL CASE vs external
/// scoring (paper: ~17× at 300K tuples; +29% with predicate pruning,
/// 24.5× total).
fn fig2c_model_inlining() {
    println!("--- Fig 2(c): model inlining (hospital, decision tree) ---");
    let n = 300_000;
    let data = hospital::generate(n, 42);
    let model = train::hospital_tree(&hospital::generate(20_000, 42), 8).expect("train");

    let base_sql = "\
        WITH data AS (\
          SELECT * FROM patient_info AS pi \
          JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id)\
        SELECT d.id, p.stay FROM PREDICT(MODEL = 'm', DATA = data AS d) \
        WITH (stay FLOAT) AS p";
    let filtered_sql = &format!("{base_sql} WHERE d.pregnant = 1");

    // External baseline: no cross optimizations, out-of-process scoring
    // with the paper's ~0.5 s runtime-startup cost.
    let external = {
        let config = SessionConfig {
            rules: RuleSet::none(),
            ..Default::default()
        };
        let session = RavenSession::with_config(config);
        data.register(session.catalog()).expect("register");
        session.store_model("m", model.clone()).expect("store");
        let plan = to_mode(
            session.plan(base_sql).expect("plan"),
            ExecutionMode::OutOfProcess,
        );
        time_mean_cold(2, || session.execute_plan(&plan).expect("exec"))
    };

    let session = RavenSession::with_config(SessionConfig::default());
    data.register(session.catalog()).expect("register");
    session.store_model("m", model).expect("store");
    let (inlined_plan, _) = session
        .optimize(session.plan(base_sql).expect("plan"))
        .expect("optimize");
    let inlined = time_mean(3, || session.execute_plan(&inlined_plan).expect("exec"));
    let (pruned_plan, _) = session
        .optimize(session.plan(filtered_sql).expect("plan"))
        .expect("optimize");
    let inlined_pruned = time_mean(3, || session.execute_plan(&pruned_plan).expect("exec"));

    println!("external scoring (0.5s startup): {:>9} ms", ms(external));
    println!(
        "inlined CASE:                    {:>9} ms  ({:.1}x)",
        ms(inlined),
        external.as_secs_f64() / inlined.as_secs_f64()
    );
    println!(
        "inlined + predicate pruning:     {:>9} ms  ({:.1}x total)\n",
        ms(inlined_pruned),
        external.as_secs_f64() / inlined_pruned.as_secs_f64()
    );
}

fn to_mode(plan: Plan, mode: ExecutionMode) -> Plan {
    plan.transform_up(&|node| match node {
        Plan::Predict {
            input,
            model,
            output,
            ..
        } => Plan::Predict {
            input,
            model,
            output,
            mode,
        },
        other => other,
    })
}

/// Paper Fig. 2(d): NN translation of a random forest — classical scoring
/// vs the GEMM translation on CPU and (simulated) GPU, across dataset
/// sizes (paper: GPU latency-bound at 1K, ~15× at 1M).
fn fig2d_nn_translation() {
    println!("--- Fig 2(d): NN translation (hospital, random forest) ---");
    let model = train::hospital_forest(&hospital::generate(20_000, 42), 10, 5).expect("train");
    let graph = translate_pipeline(&model).expect("translate");
    let cpu = InferenceSession::new(
        graph.clone(),
        SessionOptions {
            device: TensorDevice::cpu_single(),
            ..Default::default()
        },
    )
    .expect("cpu");
    let gpu = InferenceSession::new(
        graph,
        SessionOptions {
            device: TensorDevice::simulated_gpu(),
            ..Default::default()
        },
    )
    .expect("gpu");

    println!(
        "{:>10}  {:>14}  {:>14}  {:>18}",
        "rows", "RF classical", "RF-NN (CPU)", "RF-NN (GPU, sim)"
    );
    for n in sweep_sizes(1_000_000) {
        let data = hospital::generate(n, 42);
        let batch = data.joined_batch();
        let raw = model.encode_inputs(&batch).expect("encode");
        let runs = if n >= 1_000_000 { 1 } else { 3 };

        let classical = time_mean(runs, || model.predict(&batch).expect("predict"));
        let input = Tensor::matrix(
            n,
            model.steps().len(),
            raw.iter().map(|&v| v as f32).collect(),
        )
        .expect("tensor");
        let nn_cpu = time_mean(runs, || cpu.run_batched(INPUT_NAME, &input).expect("run"));
        // The simulated GPU reports analytic (device-model) time.
        let (_, gpu_stats) = gpu.run_batched(INPUT_NAME, &input).expect("run");
        println!(
            "{n:>10}  {:>11} ms  {:>11} ms  {:>15} ms",
            ms(classical),
            ms(nn_cpu),
            ms(gpu_stats.simulated)
        );
    }
    println!();
}

/// Paper Fig. 3: total inference time — Raven (in-process, session-cached,
/// morsel-parallel) vs standalone ONNX Runtime (cold session per query,
/// single-threaded) vs Raven Ext (out-of-process, ~0.5 s startup) — for
/// RF and MLP pipelines across dataset sizes.
fn fig3_raven_vs_ort() {
    println!("--- Fig 3: Raven vs ORT vs Raven Ext ---");
    let train_data = hospital::generate(20_000, 42);
    let models: Vec<(&str, Pipeline)> = vec![
        (
            "Random Forest",
            train::hospital_forest(&train_data, 10, 5).expect("rf"),
        ),
        (
            "MLP",
            train::hospital_mlp(&train_data, vec![16], 20).expect("mlp"),
        ),
    ];
    for (label, model) in models {
        println!("{label}:");
        println!(
            "{:>10}  {:>12}  {:>12}  {:>12}",
            "rows", "ORT", "Raven", "Raven Ext"
        );
        let graph = translate_pipeline(&model).expect("translate");
        let graph_bytes = graph_serialize::to_bytes(&graph);

        let mut sizes = vec![100usize];
        sizes.extend(sweep_sizes(1_000_000));
        for n in sizes {
            let data = hospital::generate(n, 42);
            let batch = data.joined_batch();
            let raw = model.encode_inputs(&batch).expect("encode");
            let input = Tensor::matrix(
                n,
                model.steps().len(),
                raw.iter().map(|&v| v as f32).collect(),
            )
            .expect("tensor");
            let runs = if n >= 1_000_000 { 1 } else { 3 };

            // Standalone ORT: per query, load the model from bytes, build
            // a fresh session, score single-threaded.
            let ort = time_mean_cold(runs, || {
                let g = graph_serialize::from_bytes(&graph_bytes).expect("load");
                let session = InferenceSession::new(
                    g,
                    SessionOptions {
                        device: TensorDevice::cpu_single(),
                        ..Default::default()
                    },
                )
                .expect("session");
                session.run_batched(INPUT_NAME, &input).expect("run")
            });

            // Raven: warm cached session, morsel-parallel scan + predict
            // through the relational executor.
            let raven = raven_query_time(&model, &data, runs);

            // Raven Ext: out-of-process classical pipeline with the
            // paper's 0.5 s startup and real serialization.
            let ext_config = raven_runtime::external::ExternalConfig::default();
            let ext = time_mean_cold(1, || {
                raven_runtime::external::score_out_of_process(&model, &batch, &ext_config)
                    .expect("external")
            });

            println!(
                "{n:>10}  {:>9} ms  {:>9} ms  {:>9} ms",
                ms(ort),
                ms(raven),
                ms(ext)
            );
        }
        println!();
    }
}

/// Warm in-database execution over a wide (pre-joined) table.
fn raven_query_time(model: &Pipeline, data: &hospital::HospitalData, runs: usize) -> Duration {
    let session = RavenSession::with_config(SessionConfig::default());
    session
        .register_table("wide", raven_data::Table::from_batch(data.joined_batch()))
        .expect("register");
    session.store_model("m", model.clone()).expect("store");
    let plan = Plan::TensorPredict {
        input: Box::new(Plan::Scan {
            table: "wide".into(),
            schema: session.catalog().table("wide").expect("t").schema().clone(),
        }),
        model: raven_ir::ModelRef {
            name: "m".into(),
            pipeline: Arc::new(model.clone()),
        },
        graph: Arc::new(translate_pipeline(model).expect("translate")),
        output: "score".into(),
        device: Device::CpuParallel,
    };
    time_mean(runs, || session.execute_plan(&plan).expect("exec"))
}

/// Paper §3.2: "In most practical cases we tested, static analysis takes
/// less than 10msec."
fn text_static_analysis() {
    println!("--- §3.2: static-analysis latency ---");
    let session = RavenSession::with_config(SessionConfig::default());
    hospital::generate(100, 1)
        .register(session.catalog())
        .expect("register");
    let script = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier
pi = pd.read_sql("patient_info")
bt = pd.read_sql("blood_tests")
pt = pd.read_sql("prenatal_tests")
joined = pi.merge(bt, on="id")
full = joined.merge(pt, on="id")
preg = full[full.pregnant == 1]
features = preg[["age", "bp", "fetal_hr"]]
model = Pipeline([("s", StandardScaler()), ("c", DecisionTreeClassifier(max_depth=5))])
out = model.predict(features)
"#;
    let t = time_mean(100, || {
        raven_pyanalysis::analyze(script, session.catalog()).expect("analyze")
    });
    println!(
        "static analysis: {} ms per script (paper: < 10 ms)\n",
        ms(t)
    );
}

/// Paper §4.1 running example: predicate-based pruning improves tree
/// prediction time (~29% in the paper).
fn text_predicate_pruning() {
    println!("--- §4.1: predicate-based model pruning (tree) ---");
    let data = hospital::generate(200_000, 42);
    let model = train::hospital_tree(&hospital::generate(20_000, 42), 8).expect("train");
    let batch = data.joined_batch();
    let mask: Vec<bool> = batch
        .column_by_name("pregnant")
        .expect("col")
        .i64_values()
        .expect("i64")
        .iter()
        .map(|&p| p == 1)
        .collect();
    let pregnant_batch = batch.filter(&mask).expect("filter");

    let bounds = model
        .feature_bounds(&[("pregnant".to_string(), raven_ml::tree::Interval::point(1.0))])
        .expect("bounds");
    let Estimator::Tree(tree) = model.estimator() else {
        unreachable!()
    };
    let pruned_tree = tree.prune(&bounds).expect("prune");
    let pruned = model
        .with_estimator(Estimator::Tree(pruned_tree.clone()))
        .expect("pipeline");

    let before = time_mean(5, || model.predict(&pregnant_batch).expect("predict"));
    let after = time_mean(5, || pruned.predict(&pregnant_batch).expect("predict"));
    println!(
        "tree nodes {} -> {}; prediction {} ms -> {} ms ({:.0}% faster; paper: 29%)\n",
        tree.n_nodes(),
        pruned_tree.n_nodes(),
        ms(before),
        ms(after),
        (1.0 - after.as_secs_f64() / before.as_secs_f64()) * 100.0
    );
}

/// Paper §4.1: categorical predicate pruning gives ~2.1× on the flight LR
/// regardless of the filter's selectivity.
fn text_categorical_pruning() {
    println!("--- §4.1: categorical predicate-based pruning (flight LR) ---");
    let data = flights::generate(300_000, &flights::FlightParams::default());
    let model = train::flight_logistic(
        &flights::generate(30_000, &flights::FlightParams::default()),
        0.002,
        250,
    )
    .expect("train");
    for airport_idx in [0usize, 7, 19] {
        let dest = data.airports[airport_idx].clone();
        let mask: Vec<bool> = data
            .flights
            .column_by_name("dest")
            .expect("col")
            .utf8_values()
            .expect("utf8")
            .iter()
            .map(|d| d == &dest)
            .collect();
        let filtered = data.flights.batch().filter(&mask).expect("filter");
        // Pin the destination; fold its indicators; drop unused features.
        let (specialized, _) = raven_opt::rules::clustering::specialize_with_bounds(
            &model,
            &[(
                "dest".to_string(),
                raven_ml::tree::Interval::point(airport_idx as f64),
            )],
        )
        .expect("specialize");
        let before = time_mean(5, || model.predict(&filtered).expect("predict"));
        let after = time_mean(5, || specialized.predict(&filtered).expect("predict"));
        println!(
            "dest={dest} (selectivity {:.3}): {} ms -> {} ms ({:.2}x; paper: ~2.1x)",
            filtered.num_rows() as f64 / data.len() as f64,
            ms(before),
            ms(after),
            before.as_secs_f64() / after.as_secs_f64()
        );
    }
    println!();
}

/// Paper §5 observation (v): batch inference gains ~an order of magnitude
/// over per-tuple scoring.
fn text_batching() {
    println!("--- §5(v): batch inference vs per-tuple scoring ---");
    let model = train::hospital_mlp(&hospital::generate(5_000, 42), vec![16], 15).expect("mlp");
    let graph = translate_pipeline(&model).expect("translate");
    let data = hospital::generate(50_000, 42);
    let batch = data.joined_batch();
    let raw = model.encode_inputs(&batch).expect("encode");
    let input = Tensor::matrix(
        batch.num_rows(),
        model.steps().len(),
        raw.iter().map(|&v| v as f32).collect(),
    )
    .expect("tensor");
    for batch_size in [1usize, 10, 100, 1_000, 0] {
        let session = InferenceSession::new(
            graph.clone(),
            SessionOptions {
                batch_size,
                device: TensorDevice::cpu_single(),
                ..Default::default()
            },
        )
        .expect("session");
        let t = time_mean(1, || session.run_batched(INPUT_NAME, &input).expect("run"));
        let label = if batch_size == 0 {
            "whole input".to_string()
        } else {
            format!("{batch_size}")
        };
        println!("batch size {label:>12}: {:>10} ms", ms(t));
    }
    println!();
}
