//! Criterion micro-benchmarks: individual rules, substrates, and rule
//! on/off ablations (the design-choice studies DESIGN.md calls for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{flights, hospital, train};
use raven_ml::translate::{translate_pipeline, INPUT_NAME};
use raven_ml::tree::Interval;
use raven_ml::Estimator;
use raven_opt::{OptimizerContext, RuleSet};
use raven_tensor::{Device, InferenceSession, SessionOptions, Tensor};

/// Tree pruning under an equality constraint (the §4.1 transformation
/// itself, not the scoring).
fn bench_predicate_pruning(c: &mut Criterion) {
    let model = train::hospital_tree(&hospital::generate(20_000, 42), 10).unwrap();
    let Estimator::Tree(tree) = model.estimator().clone() else {
        unreachable!()
    };
    let bounds = model
        .feature_bounds(&[("pregnant".to_string(), Interval::point(1.0))])
        .unwrap();
    c.bench_function("rule/tree_prune", |b| {
        b.iter(|| tree.prune(std::hint::black_box(&bounds)).unwrap())
    });
}

/// Model shrinking (projection pushdown's model half) on a sparse LR.
fn bench_projection_pushdown(c: &mut Criterion) {
    let data = flights::generate(30_000, &flights::FlightParams::default());
    let model = train::flight_logistic(&data, 0.02, 150).unwrap();
    c.bench_function("rule/shrink_pipeline", |b| {
        b.iter(|| {
            raven_opt::rules::model_utils::shrink_pipeline(std::hint::black_box(&model)).unwrap()
        })
    });
}

/// Static analysis of the running-example script (paper: < 10 ms).
fn bench_static_analysis(c: &mut Criterion) {
    let session = RavenSession::with_config(SessionConfig::for_tests());
    hospital::generate(100, 1)
        .register(session.catalog())
        .unwrap();
    let script = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier
pi = pd.read_sql("patient_info")
bt = pd.read_sql("blood_tests")
joined = pi.merge(bt, on="id")
features = joined[["age", "bp"]]
model = Pipeline([("s", StandardScaler()), ("c", DecisionTreeClassifier(max_depth=5))])
out = model.predict(features)
"#;
    c.bench_function("static_analysis/running_example", |b| {
        b.iter(|| {
            raven_pyanalysis::analyze(std::hint::black_box(script), session.catalog()).unwrap()
        })
    });
}

/// SQL parse+bind+optimize latency for the running example.
fn bench_planning(c: &mut Criterion) {
    let session = RavenSession::with_config(SessionConfig::for_tests());
    let data = hospital::generate(1_000, 42);
    data.register(session.catalog()).unwrap();
    session
        .store_model("duration_of_stay", train::hospital_tree(&data, 6).unwrap())
        .unwrap();
    let sql = "\
        WITH data AS (\
          SELECT * FROM patient_info AS pi \
          JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id)\
        SELECT d.id, p.stay FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
        WITH (stay FLOAT) AS p WHERE d.pregnant = 1 AND p.stay > 6";
    c.bench_function("planning/parse_bind", |b| {
        b.iter(|| session.plan(std::hint::black_box(sql)).unwrap())
    });
    let plan = session.plan(sql).unwrap();
    c.bench_function("planning/cross_optimize", |b| {
        b.iter(|| {
            session
                .optimize(std::hint::black_box(plan.clone()))
                .unwrap()
        })
    });
}

/// Tensor-runtime batch-size sensitivity (paper §5 observation v).
fn bench_batching(c: &mut Criterion) {
    let model = train::hospital_mlp(&hospital::generate(5_000, 42), vec![16], 10).unwrap();
    let graph = translate_pipeline(&model).unwrap();
    let data = hospital::generate(10_000, 42);
    let batch = data.joined_batch();
    let raw = model.encode_inputs(&batch).unwrap();
    let input = Tensor::matrix(
        batch.num_rows(),
        model.steps().len(),
        raw.iter().map(|&v| v as f32).collect(),
    )
    .unwrap();
    let mut group = c.benchmark_group("tensor_batching");
    group.sample_size(10);
    for batch_size in [1usize, 100, 0] {
        let session = InferenceSession::new(
            graph.clone(),
            SessionOptions {
                batch_size,
                device: Device::cpu_single(),
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(if batch_size == 0 {
                "whole".to_string()
            } else {
                batch_size.to_string()
            }),
            &session,
            |b, s| b.iter(|| s.run_batched(INPUT_NAME, &input).unwrap()),
        );
    }
    group.finish();
}

/// Ablation: end-to-end running-example latency with each rule family
/// toggled (the design-choice study).
fn bench_ablation(c: &mut Criterion) {
    let data = hospital::generate(50_000, 42);
    let model = train::hospital_tree(&hospital::generate(20_000, 42), 8).unwrap();
    let sql = "\
        WITH data AS (\
          SELECT * FROM patient_info AS pi \
          JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id)\
        SELECT d.id, p.stay FROM PREDICT(MODEL = 'm', DATA = data AS d) \
        WITH (stay FLOAT) AS p WHERE d.pregnant = 1 AND p.stay > 6";
    let configs: Vec<(&str, RuleSet)> = vec![
        ("none", RuleSet::none()),
        ("relational_only", RuleSet::relational_only()),
        (
            "no_pruning",
            RuleSet {
                predicate_model_pruning: false,
                stats_derived_predicates: false,
                ..RuleSet::all()
            },
        ),
        (
            "no_inlining",
            RuleSet {
                model_inlining: false,
                ..RuleSet::all()
            },
        ),
        ("full", RuleSet::all()),
    ];
    let mut group = c.benchmark_group("ablation/running_example_50k");
    group.sample_size(10);
    for (label, rules) in configs {
        let config = SessionConfig {
            rules,
            ..Default::default()
        };
        let session = RavenSession::with_config(config);
        data.register(session.catalog()).unwrap();
        session.store_model("m", model.clone()).unwrap();
        let (plan, _) = session.optimize(session.plan(sql).unwrap()).unwrap();
        group.bench_function(label, |b| b.iter(|| session.execute_plan(&plan).unwrap()));
    }
    group.finish();
}

/// Relational substrate: hash join and filter throughput.
fn bench_relational(c: &mut Criterion) {
    let session = RavenSession::with_config(SessionConfig::default());
    let data = hospital::generate(100_000, 42);
    data.register(session.catalog()).unwrap();
    let join_plan = session
        .plan("SELECT * FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id")
        .unwrap();
    let filter_plan = session
        .plan("SELECT * FROM patient_info WHERE age > 50 AND pregnant = 1")
        .unwrap();
    let mut group = c.benchmark_group("relational_100k");
    group.sample_size(10);
    group.bench_function("hash_join", |b| {
        b.iter(|| session.execute_plan(&join_plan).unwrap())
    });
    group.bench_function("filter", |b| {
        b.iter(|| session.execute_plan(&filter_plan).unwrap())
    });
    group.finish();
}

/// Cost model evaluation speed (must stay trivial vs execution).
fn bench_cost_model(c: &mut Criterion) {
    let session = RavenSession::with_config(SessionConfig::for_tests());
    let data = hospital::generate(1_000, 42);
    data.register(session.catalog()).unwrap();
    session
        .store_model("m", train::hospital_tree(&data, 6).unwrap())
        .unwrap();
    let plan = session
        .plan(
            "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = \
             (SELECT * FROM patient_info AS pi JOIN blood_tests AS bt \
              ON pi.id = bt.id JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
             WITH (s FLOAT) AS p",
        )
        .unwrap();
    let params = raven_opt::cost::CostParams::default();
    c.bench_function("cost_model/estimate", |b| {
        b.iter(|| {
            raven_opt::cost::estimate(std::hint::black_box(&plan), session.catalog(), &params)
        })
    });
    let ctx = OptimizerContext::new(session.catalog());
    let _ = ctx;
}

criterion_group!(
    benches,
    bench_predicate_pruning,
    bench_projection_pushdown,
    bench_static_analysis,
    bench_planning,
    bench_batching,
    bench_ablation,
    bench_relational,
    bench_cost_model
);
criterion_main!(benches);
