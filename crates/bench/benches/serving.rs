//! Serving-layer benchmark: queries/sec through a shared `ServerState`.
//!
//! Run with `cargo bench -p raven-bench --bench serving`. Three sections:
//!
//! * **plan cache on vs. off** — the amortization the prepared-plan
//!   cache buys on a repeated inference query (parse → bind → optimize
//!   skipped on every hit);
//! * **result cache: cold vs. warm + hit-rate sweep** — memoized
//!   execution on deterministic repeats: cold (execute) vs. warm
//!   (fingerprint lookup) latency, and the hit rate as the workload's
//!   distinct-constant pool grows;
//! * **exact-text vs. template cache** — 1000 queries from 10 shapes ×
//!   20 distinct constants each: keying the cache on the normalized
//!   template (constants → `?`) vs. on raw SQL text, with the hit-rate
//!   delta printed;
//! * **concurrent clients** — the same workload from 1/4/8 threads over
//!   one shared server;
//! * **network path** — the same workload over the framed-TCP front end
//!   (loop-back), pricing framing + result serialization per query;
//! * **serial vs. pipelined** — one connection, warm cached workload:
//!   the v5 one-frame-in-flight protocol vs. v6 with a 16-deep
//!   pipeline (acceptance floor: 5x per-connection throughput);
//! * **micro-batch sizes {1, 8, 64}** — point-scoring throughput as the
//!   coalescing window widens (`max_batch = 1` reproduces per-tuple
//!   scoring; the paper's §5 observation v is the same lever at the
//!   tensor-runtime layer);
//! * **fixed vs adaptive flush** — point scores under a 5 ms deadline
//!   against a mixed cheap/expensive model pair: fixed windows
//!   {0.5, 1, 4 ms} vs the EWMA-sized adaptive window, reporting ok/s,
//!   p99, shed/expired counts, and the exact outcome reconciliation
//!   (`requests == scored + shed + expired`, zero rows served past
//!   their deadline);
//! * **multi-tenant serving** — N tenants × one hot query each over one
//!   engine: per-tenant result-cache hit rates, cross-tenant
//!   invalidation isolation (a model swap in tenant 0 drops nothing
//!   elsewhere), and per-tenant quotas bounding a noisy neighbor's
//!   impact on a quiet tenant's tail latency;
//! * **tracing overhead** — the warm cached path with tracing disabled
//!   vs. the default 1-in-64 head sampling vs. sampling every request
//!   (the default must stay within 2% of disabled).
//!
//! Default dataset is 20k rows; set `RAVEN_BENCH_FULL=1` for 200k.

use raven_bench::{full_scale, ms, time_mean};
use raven_datagen::{hospital, train};
use raven_server::{
    BatchConfig, NetConfig, PipelinedClient, RavenClient, RavenServer, ServerConfig, ServerState,
    TenantQuotaConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

/// Plan cache as given, result cache off — the configuration for every
/// section that prices *execution* (a default-on result cache would turn
/// repeat queries into hash lookups and flatter the numbers).
fn hospital_server(rows: usize, plan_cache_capacity: usize) -> ServerState {
    hospital_server_with(
        rows,
        ServerConfig {
            plan_cache_capacity,
            result_cache_capacity: 0,
            ..Default::default()
        },
    )
}

fn hospital_server_with(rows: usize, config: ServerConfig) -> ServerState {
    let server = ServerState::new(config);
    let data = hospital::generate(rows, 42);
    data.register(server.catalog()).expect("register");
    let model = train::hospital_tree(&data, 6).expect("train");
    server
        .store_model("duration_of_stay", model)
        .expect("store");
    server
}

fn qps(queries: usize, elapsed: Duration) -> f64 {
    queries as f64 / elapsed.as_secs_f64()
}

fn bench_plan_cache(rows: usize) {
    println!("== plan cache on vs. off ({rows} rows, repeated inference query) ==");
    let runs = 30;
    for (label, capacity) in [("cache off", 0usize), ("cache on", 128)] {
        // Result caching off: this section prices plan preparation, so
        // every run must actually execute.
        let server = hospital_server_with(
            rows,
            ServerConfig {
                plan_cache_capacity: capacity,
                result_cache_capacity: 0,
                ..Default::default()
            },
        );
        let mean = time_mean(runs, || server.execute(SQL).expect("query"));
        let stats = server.plan_cache_stats();
        println!(
            "  {label:<9}  {:>8} ms/query  {:>8.1} q/s  ({} preparations for {} queries)",
            ms(mean),
            1.0 / mean.as_secs_f64(),
            stats.preparations,
            runs + 1,
        );
    }
}

/// Exact-text vs. template plan caching on production-shaped traffic:
/// 1000 queries drawn from 10 query *shapes*, each shape instantiated
/// with 20 distinct constants (so 200 distinct SQL texts). The
/// exact-text cache (normalization off) must prepare every text; the
/// template cache prepares each shape once. The printed delta is the
/// number in the ISSUE: hit rate + optimizations paid.
fn bench_template_cache(rows: usize) {
    println!("== exact-text vs. template plan cache (1000 queries, 10 shapes x 20 constants) ==");
    const QUERIES: usize = 1000;
    const SHAPES: usize = 10;
    const CONSTANTS: usize = 20;
    // Shapes differ structurally (LIMIT is part of the plan, not a
    // parameter); constants differ per request, as template traffic does.
    let sql_for = |q: usize| {
        let shape = q % SHAPES;
        let constant = 18 + 3 * ((q / SHAPES) % CONSTANTS); // 20 distinct ages
        format!(
            "SELECT d.id, p.stay FROM PREDICT(MODEL = 'duration_of_stay', \
             DATA = (SELECT * FROM patient_info AS pi \
             JOIN blood_tests AS bt ON pi.id = bt.id \
             JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
             WITH (stay FLOAT) AS p \
             WHERE d.age > {constant} ORDER BY p.stay DESC LIMIT {}",
            shape + 1
        )
    };
    let mut hit_rates = Vec::new();
    for (label, normalize) in [("exact-text", false), ("template", true)] {
        let config = ServerConfig {
            normalize_parameters: normalize,
            result_cache_capacity: 0,
            ..Default::default()
        };
        let server = hospital_server_with(rows, config);
        let start = Instant::now();
        for q in 0..QUERIES {
            std::hint::black_box(server.execute(&sql_for(q)).expect("query"));
        }
        let elapsed = start.elapsed();
        let stats = server.plan_cache_stats();
        hit_rates.push(stats.hit_rate());
        let snap = server.stats();
        println!(
            "  {label:<10}  {:>8.1} q/s  hit rate {:>5.1}%  {:>3} preparations  \
             ({} normalized, {} template hits)",
            qps(QUERIES, elapsed),
            stats.hit_rate() * 100.0,
            stats.preparations,
            snap.normalized,
            snap.template_hits,
        );
    }
    println!(
        "  hit-rate delta: +{:.1} points for the template cache",
        (hit_rates[1] - hit_rates[0]) * 100.0
    );
}

/// The ISSUE's acceptance numbers: warm repeat-query latency vs. the
/// execute path, and the hit rate on a repeat-heavy workload (which must
/// clear 90%).
fn bench_result_cache(rows: usize) {
    println!("== result cache: cold vs. warm on a deterministic repeat query ==");
    let runs = 30;
    // Cold: result cache off — every run executes (plan cache on, so
    // the delta isolates execution, not optimization).
    let cold_server = hospital_server(rows, 128);
    cold_server.execute(SQL).expect("warm plan");
    let cold = time_mean(runs, || cold_server.execute(SQL).expect("query"));
    // Warm: result cache on — after the first execution every repeat is
    // a fingerprint lookup.
    let warm_server = hospital_server_with(
        rows,
        ServerConfig {
            result_cache_capacity: 256,
            ..Default::default()
        },
    );
    warm_server.execute(SQL).expect("populate");
    let warm = time_mean(runs, || warm_server.execute(SQL).expect("query"));
    let stats = warm_server.result_cache_stats();
    println!(
        "  execute path  {:>8} ms/query  {:>10.1} q/s",
        ms(cold),
        1.0 / cold.as_secs_f64(),
    );
    println!(
        "  warm hit      {:>8} ms/query  {:>10.1} q/s  ({:.0}x faster; {})",
        ms(warm),
        1.0 / warm.as_secs_f64(),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        stats,
    );

    println!("== result cache hit-rate sweep (400 queries, distinct constants per shape) ==");
    const QUERIES: usize = 400;
    for distinct in [1usize, 4, 16, 64] {
        let server = hospital_server_with(
            rows.min(20_000),
            ServerConfig {
                result_cache_capacity: 256,
                ..Default::default()
            },
        );
        let start = Instant::now();
        for q in 0..QUERIES {
            let age = 18 + (q % distinct);
            let sql = format!(
                "SELECT d.id, p.stay FROM PREDICT(MODEL = 'duration_of_stay',                  DATA = (SELECT * FROM patient_info AS pi                  JOIN blood_tests AS bt ON pi.id = bt.id                  JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d)                  WITH (stay FLOAT) AS p WHERE d.age > {age}"
            );
            std::hint::black_box(server.execute(&sql).expect("query"));
        }
        let elapsed = start.elapsed();
        let stats = server.result_cache_stats();
        println!(
            "  {distinct:>3} distinct  {:>9.1} q/s  hit rate {:>5.1}%               ({} executions for {QUERIES} queries)",
            qps(QUERIES, elapsed),
            stats.hit_rate() * 100.0,
            stats.executions,
        );
    }
}

fn bench_concurrency(rows: usize) {
    println!("== concurrent clients, shared ServerState (plan cache on) ==");
    let per_client = 20;
    for clients in [1usize, 4, 8] {
        let server = Arc::new(hospital_server(rows, 128));
        server.execute(SQL).expect("warm-up");
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_client {
                        std::hint::black_box(server.execute(SQL).expect("query"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
        let elapsed = start.elapsed();
        let snap = server.stats();
        println!(
            "  {clients} client(s)  {:>8.1} q/s  p50 {} ms  p99 {} ms  (plan cache: {})",
            qps(clients * per_client, elapsed),
            ms(snap.latency.p50),
            ms(snap.latency.p99),
            snap.plan_cache,
        );
    }
}

fn bench_micro_batching(rows: usize) {
    println!("== micro-batched point scoring, batch sizes {{1, 8, 64}} ==");
    let data_rows = rows.min(5_000);
    let data = hospital::generate(data_rows, 42);
    // An MLP: per-invocation cost is real (matrix work), so coalescing
    // point lookups into batched invocations is the lever under test.
    let model = train::hospital_mlp(&data, vec![32, 16], 5).expect("train");
    // Raw rows in the pipeline's encoding (categoricals → indices).
    let joined = data.joined_batch();
    let columns: Vec<Vec<f64>> = model
        .steps()
        .iter()
        .map(|step| {
            let col = joined.column_by_name(&step.column).expect("column");
            step.transform.encode_raw(col).expect("encode")
        })
        .collect();
    // Open-loop-ish load: many more clients than cores, so batches can
    // actually fill without waiting out the flush window. The sweep
    // exposes the classic serving tradeoff: coalescing trades queueing
    // delay (bounded by the flush window) for fewer scorer invocations —
    // it pays off in proportion to per-invocation overhead, which for
    // the in-process classical scorer is small and for the paper's
    // external runtimes (~0.5 s startup) is enormous.
    let requests = 1024usize;
    let clients = 64usize;
    for max_batch in [1usize, 8, 64] {
        let config = ServerConfig {
            batch: BatchConfig::fixed(max_batch, Duration::from_micros(50)),
            ..Default::default()
        };
        let server = Arc::new(ServerState::new(config));
        server
            .store_model("duration_of_stay", model.clone())
            .expect("store");
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = server.clone();
                let columns = columns.clone();
                std::thread::spawn(move || {
                    for r in 0..requests / clients {
                        let i = (c * 131 + r * 17) % data_rows;
                        let row: Vec<f64> = columns.iter().map(|col| col[i]).collect();
                        std::hint::black_box(
                            server.score_row("duration_of_stay", row).expect("score"),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
        let elapsed = start.elapsed();
        let stats = server.batcher_stats();
        println!(
            "  max_batch={max_batch:<3}  {:>9.0} scores/s  \
             ({} scorer calls for {} requests, mean batch {:.1})",
            qps(requests, elapsed),
            stats.batches,
            stats.requests,
            stats.mean_batch_size(),
        );
    }
}

fn bench_adaptive_flush(rows: usize) {
    println!(
        "== fixed vs adaptive flush under a 5 ms deadline \
         (mixed cheap tree + expensive MLP point scores) =="
    );
    let data_rows = rows.min(5_000);
    let data = hospital::generate(data_rows, 42);
    // Two models over one featurization: a cheap tree and an MLP whose
    // per-invocation cost is real — the mix the adaptive window must
    // price per batch instead of assuming one fixed cost.
    let cheap = train::hospital_tree(&data, 6).expect("train tree");
    let expensive = train::hospital_mlp(&data, vec![32, 16], 5).expect("train mlp");
    let joined = data.joined_batch();
    let columns: Vec<Vec<f64>> = cheap
        .steps()
        .iter()
        .map(|step| {
            let col = joined.column_by_name(&step.column).expect("column");
            step.transform.encode_raw(col).expect("encode")
        })
        .collect();
    let deadline = Duration::from_millis(5);
    let requests = 2048usize;
    let clients = 32usize;
    let policies: Vec<(String, BatchConfig)> = [500u64, 1_000, 4_000]
        .into_iter()
        .map(|us| {
            (
                format!("fixed {:>4} µs", us),
                BatchConfig::fixed(64, Duration::from_micros(us)),
            )
        })
        .chain(std::iter::once((
            "adaptive".to_string(),
            BatchConfig::adaptive(64, Duration::ZERO, Duration::from_millis(4)),
        )))
        .collect();
    for (label, batch) in policies {
        let config = ServerConfig {
            batch,
            ..Default::default()
        };
        let server = Arc::new(ServerState::new(config));
        server.store_model("cheap", cheap.clone()).expect("store");
        server
            .store_model("expensive", expensive.clone())
            .expect("store");
        // Warm both models so the cost EWMAs are seeded before any
        // deadline rides on their predictions.
        for i in 0..16 {
            let row: Vec<f64> = columns.iter().map(|c| c[i]).collect();
            server.score_row("cheap", row.clone()).expect("warm");
            server.score_row("expensive", row).expect("warm");
        }
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = server.clone();
                let columns = columns.clone();
                std::thread::spawn(move || {
                    let mut ok_latencies = Vec::new();
                    let mut rejected = 0usize;
                    let mut late_ok = 0usize;
                    for r in 0..requests / clients {
                        let i = (c * 131 + r * 17) % data_rows;
                        let row: Vec<f64> = columns.iter().map(|col| col[i]).collect();
                        let model = if r % 2 == 0 { "cheap" } else { "expensive" };
                        let sent = Instant::now();
                        match server.score_row_with_deadline(model, row, Some(deadline)) {
                            Ok(score) => {
                                let waited = sent.elapsed();
                                std::hint::black_box(score);
                                if waited > deadline {
                                    late_ok += 1;
                                }
                                ok_latencies.push(waited);
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                    (ok_latencies, rejected, late_ok)
                })
            })
            .collect();
        let mut latencies = Vec::new();
        let mut rejected = 0usize;
        let mut late_ok = 0usize;
        for h in handles {
            let (l, r, late) = h.join().expect("client");
            latencies.extend(l);
            rejected += r;
            late_ok += late;
        }
        let elapsed = start.elapsed();
        latencies.sort();
        let p99 = latencies
            .get(latencies.len().saturating_sub(1) * 99 / 100)
            .copied()
            .unwrap_or_default();
        // The worker sheds expired residents at its next flush; give the
        // outcome counters a moment to reconcile exactly.
        let settle = Instant::now() + Duration::from_secs(2);
        let stats = loop {
            let s = server.batcher_stats();
            if s.requests == s.batched_rows + s.bad_arity + s.shed + s.expired + s.failed
                || Instant::now() >= settle
            {
                break s;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let reconciled =
            stats.requests == stats.batched_rows + stats.bad_arity + stats.shed + stats.expired;
        println!(
            "  {label}  {:>9.0} ok/s  p99 {:>7} ms  mean batch {:>4.1}  \
             {} shed, {} expired, {} served-past-deadline  \
             [requests {} == scored {} + shed {} + expired {}: {}]",
            qps(latencies.len(), elapsed),
            ms(p99),
            stats.mean_batch_size(),
            stats.shed,
            stats.expired,
            late_ok,
            stats.requests,
            stats.batched_rows,
            stats.shed,
            stats.expired,
            if reconciled {
                "exact"
            } else {
                "NOT RECONCILED"
            },
        );
        assert_eq!(
            latencies.len() + rejected,
            requests,
            "every request must resolve as a score or a typed rejection"
        );
    }
}

fn bench_network_path(rows: usize) {
    println!("== network path: framed TCP vs. in-process, shared ServerState ==");
    // A loop-back round-trip adds framing + syscalls + result-table
    // serialization per query; this section prices that overhead against
    // the in-process `bench_concurrency` numbers above.
    let per_client = 20;
    for clients in [1usize, 4, 8] {
        let state = Arc::new(hospital_server(rows, 128));
        state.execute(SQL).expect("warm-up");
        let server = RavenServer::bind(
            state,
            NetConfig {
                workers: clients,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = RavenClient::connect(addr).expect("connect");
                    for _ in 0..per_client {
                        std::hint::black_box(client.query(SQL).expect("query"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
        let elapsed = start.elapsed();
        let snap = server.state().stats();
        println!(
            "  {clients} client(s)  {:>8.1} q/s  p50 {} ms  p99 {} ms  (plan cache: {})",
            qps(clients * per_client, elapsed),
            ms(snap.latency.p50),
            ms(snap.latency.p99),
            snap.plan_cache,
        );
        server.shutdown();
    }
}

/// Serial vs. pipelined: the same warm cached workload through one
/// connection, first with the one-frame-in-flight v5 protocol (every
/// query pays a full client→server→client round trip before the next
/// may start), then with protocol v6 keeping a 16-deep pipeline filled.
/// Per-connection throughput is the headline: pipelining amortizes the
/// round trip and the reactor wake-ups across the in-flight window.
fn bench_pipelining(rows: usize) {
    println!("== serial vs. pipelined: per-connection throughput, warm cached workload ==");
    const QUERIES: usize = 10_000;
    const INFLIGHT: usize = 16;
    // A bounded result (point-lookup shaped, as interactive inference
    // traffic is): with the result cache warm the server side is a hash
    // lookup and a small encode, so what this section prices is the
    // wire protocol itself — the round trip the serial client pays per
    // query and the pipelined client amortizes across its window.
    let hot_sql = "SELECT id, age FROM patient_info WHERE id < 16".to_string();

    // Result cache ON: this section prices the *wire protocol*, so the
    // server side should be as close to free as a real hot path gets.
    let state = Arc::new(hospital_server_with(rows, ServerConfig::default()));
    state.execute(&hot_sql).expect("warm-up");
    let server = RavenServer::bind(
        state,
        NetConfig {
            workers: 4,
            max_inflight_per_conn: INFLIGHT,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Serial oracle: protocol v5, one frame in flight.
    let mut serial = RavenClient::connect(addr).expect("connect").at_version(5);
    serial.query(&hot_sql).expect("warm the connection");
    let start = Instant::now();
    for _ in 0..QUERIES {
        std::hint::black_box(serial.query(&hot_sql).expect("serial query"));
    }
    let serial_elapsed = start.elapsed();
    let serial_qps = qps(QUERIES, serial_elapsed);

    // Pipelined: protocol v6, the full INFLIGHT budget kept occupied in
    // waves — fill the window, drain it, repeat. Submits batch into one
    // write per wave, replies drain through the buffered reader.
    let mut pipelined = PipelinedClient::connect(addr).expect("connect");
    // Warm the connection (socket buffers, allocator) like the serial
    // side did, so both measure steady state.
    pipelined.submit(&hot_sql, None).expect("submit");
    let (_, warm) = pipelined.recv().expect("recv");
    warm.expect("warm the connection");
    let start = Instant::now();
    let mut received = 0usize;
    while received < QUERIES {
        let wave = INFLIGHT.min(QUERIES - received);
        for _ in 0..wave {
            pipelined.submit(&hot_sql, None).expect("submit");
        }
        for _ in 0..wave {
            let (_, reply) = pipelined.recv().expect("recv");
            std::hint::black_box(reply.expect("pipelined query"));
            received += 1;
        }
    }
    let pipelined_elapsed = start.elapsed();
    let pipelined_qps = qps(QUERIES, pipelined_elapsed);

    println!(
        "  serial v5 (1 in flight)    {serial_qps:>9.1} q/s  ({} queries in {:?})",
        QUERIES, serial_elapsed
    );
    println!(
        "  pipelined v6 ({INFLIGHT} in flight) {pipelined_qps:>9.1} q/s  ({} queries in {:?})",
        QUERIES, pipelined_elapsed
    );
    println!(
        "  per-connection speedup     {:>9.1}x  (acceptance floor: 5x)",
        pipelined_qps / serial_qps
    );
    server.shutdown();
}

/// Multi-tenant serving: N tenants, each with its own (same-named!)
/// dataset and model, hammered concurrently over one engine.
///
/// Three measurements:
/// 1. hot throughput with per-tenant result caches (every tenant's
///    repeat traffic hits its own cache);
/// 2. cross-tenant invalidation isolation — a model swap in tenant 0
///    invalidates its own entries and nobody else's (counters printed);
/// 3. noisy neighbor: tenant 0 saturates a strict per-tenant quota
///    while a quiet tenant runs the same workload with and without the
///    noise — the quiet tenant's p99 must not move materially.
fn bench_multi_tenant(rows: usize) {
    const TENANTS: usize = 4;
    const QUERIES_PER_TENANT: usize = 60;
    let per_tenant_rows = (rows / 4).clamp(1_000, 20_000);
    println!(
        "== multi-tenant serving ({TENANTS} tenants x {per_tenant_rows} rows, same-named models) =="
    );
    let build = |quota: TenantQuotaConfig| {
        let server = Arc::new(ServerState::new(ServerConfig {
            tenant_quota: quota,
            ..Default::default()
        }));
        for t in 0..TENANTS {
            let tenant = format!("tenant-{t}");
            let data = hospital::generate(per_tenant_rows, 42 + t as u64);
            let shard = server.tenant(&tenant).expect("tenant");
            data.register(shard.catalog()).expect("register");
            shard
                .store_model(
                    "duration_of_stay",
                    train::hospital_tree(&data, 6).expect("train"),
                )
                .expect("store");
        }
        server
    };

    // 1. Hot throughput: every tenant hammers its own namespace.
    let server = build(TenantQuotaConfig::default());
    let start = Instant::now();
    let handles: Vec<_> = (0..TENANTS)
        .map(|t| {
            let server = server.clone();
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                for _ in 0..QUERIES_PER_TENANT {
                    std::hint::black_box(server.execute_in(&tenant, SQL).expect("query"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }
    let elapsed = start.elapsed();
    let aggregate = server.stats();
    println!(
        "  {TENANTS} tenants hot   {:>8.1} q/s aggregate  result hit rate {:>5.1}%  \
         ({} preparations: one per tenant)",
        qps(TENANTS * QUERIES_PER_TENANT, elapsed),
        aggregate.result_cache.hit_rate() * 100.0,
        aggregate.plan_cache.preparations,
    );

    // 2. Invalidation isolation: swap tenant-0's model, count casualties.
    let data = hospital::generate(per_tenant_rows, 42);
    server
        .store_model_in(
            "tenant-0",
            "duration_of_stay",
            train::hospital_tree(&data, 5).expect("retrain"),
        )
        .expect("swap");
    let victims: u64 = (1..TENANTS)
        .map(|t| {
            server
                .tenant_stats(&format!("tenant-{t}"))
                .expect("stats")
                .result_cache
                .invalidations
        })
        .sum();
    let own = server
        .tenant_stats("tenant-0")
        .expect("stats")
        .result_cache
        .invalidations;
    println!(
        "  tenant-0 model swap: {own} own result entries invalidated, \
         {victims} in the other {} tenants",
        TENANTS - 1
    );

    // 3. Noisy neighbor under a strict quota: quiet tenant's p99 with
    // the noise vs. without it.
    let quiet_p99 = |noisy: bool| {
        let server = build(TenantQuotaConfig::strict(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let noise: Vec<_> = if noisy {
            (0..6)
                .map(|thread| {
                    let server = server.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let mut i = 0usize;
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            // A fresh constant every request: one shared
                            // template plan, but a distinct result
                            // fingerprint, so every request *executes*
                            // and holds its quota slot — saturating
                            // traffic with rejections expected.
                            let sql = SQL.replace(
                                "> 6",
                                &format!("> 6.{:04}", (thread * 1_000 + i) % 10_000),
                            );
                            let _ = server.serve_in("tenant-0", &sql, None);
                            i += 1;
                        }
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        if noisy {
            // Let the noise actually saturate tenant-0's quota before
            // the quiet tenant's measurement window opens.
            std::thread::sleep(Duration::from_millis(50));
        }
        for _ in 0..QUERIES_PER_TENANT {
            std::hint::black_box(server.execute_in("tenant-1", SQL).expect("quiet query"));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in noise {
            h.join().expect("noise thread");
        }
        let quiet = server.tenant_stats("tenant-1").expect("stats");
        let noisy_stats = server.tenant_stats("tenant-0").expect("stats");
        (quiet.latency.p99, noisy_stats.admission.rejected_overloaded)
    };
    let (p99_alone, _) = quiet_p99(false);
    let (p99_noisy, rejections) = quiet_p99(true);
    println!(
        "  quiet tenant p99: {} ms alone, {} ms beside a noisy neighbor \
         ({rejections} noisy rejections absorbed by its quota)",
        ms(p99_alone),
        ms(p99_noisy),
    );
}

/// Tracing overhead on the hot cached path: the same warm repeat query
/// (result-cache hit — the cheapest request the server serves, so the
/// most overhead-sensitive) with tracing disabled, at the default 1-in-64
/// head sampling, and sampling every request. The ISSUE's acceptance
/// number: the default must cost < 2% throughput vs. disabled. Disabled
/// is atomic-gated — `sample_every == 0` short-circuits before any
/// span-recorder allocation — so that column is the true baseline.
fn bench_tracing_overhead(rows: usize) {
    println!("== tracing overhead on the warm result-cache path ==");
    let runs = 3_000;
    let mut baseline = None;
    for (label, sample_rate) in [
        ("tracing off", 0u32),
        ("1-in-64 (default)", 64),
        ("sample all", 1),
    ] {
        let server = hospital_server_with(
            rows,
            ServerConfig {
                result_cache_capacity: 256,
                trace_sample_rate: sample_rate,
                // Keep the slow path out of the measurement: a warm hit
                // never crosses the default 100 ms threshold.
                ..Default::default()
            },
        );
        server.execute(SQL).expect("populate");
        let mean = time_mean(runs, || {
            std::hint::black_box(server.execute(SQL).expect("query"));
        });
        let rate = 1.0 / mean.as_secs_f64();
        let overhead = baseline
            .map(|base: f64| format!("{:>+6.2}% vs. off", (base / rate - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        baseline = baseline.or(Some(rate));
        println!("  {label:<18}  {:>9.1} q/s  {overhead}", rate);
    }
}

/// The kernel-placement sweep on a forest-heavy scoring workload: the
/// same morsel scored row-at-a-time (classical), through the flattened
/// columnar kernel, and — for the plan-level view — a session EXPLAIN
/// showing the cost-based optimizer routing the forest to the kernel on
/// its own. The scores must be **bitwise identical** between classical
/// and kernel (the optimizer swaps them per query); the speedup is the
/// tentpole's acceptance number (floor: 5x).
fn bench_kernel_placement(rows: usize) {
    use raven_core::{RavenSession, SessionConfig};
    use raven_ml::FlatForest;

    println!("== kernel placement: classical vs columnar kernel, forest-heavy morsel ==");
    let data_rows = rows.min(20_000);
    let data = hospital::generate(data_rows, 42);
    let model = train::hospital_forest(&data, 48, 8).expect("train forest");
    let joined = data.joined_batch();
    let raw = model.encode_inputs(&joined).expect("encode");
    let n = joined.num_rows();

    let runs = 5;
    let classical = time_mean(runs, || {
        std::hint::black_box(model.predict_raw(&raw, n).expect("classical"))
    });
    let flat = FlatForest::from_pipeline(&model).expect("flatten");
    let kernel = time_mean(runs, || {
        std::hint::black_box(flat.score_raw(&raw, n).expect("kernel"))
    });

    // The differential contract, on real data at bench scale.
    let a = model.predict_raw(&raw, n).expect("classical");
    let b = flat.score_raw(&raw, n).expect("kernel");
    let identical = a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
    let speedup = classical.as_secs_f64() / kernel.as_secs_f64().max(1e-12);
    println!(
        "  classical row-at-a-time  {:>8} ms/morsel  ({n} rows x {} trees)",
        ms(classical),
        48,
    );
    println!(
        "  columnar kernel          {:>8} ms/morsel  {} ",
        ms(kernel),
        flat.describe(),
    );
    println!(
        "  speedup {speedup:>18.1}x  scores bitwise identical: {identical}  \
         (acceptance floor: 5x, identical)",
    );
    assert!(identical, "kernel and classical scores diverged");

    // Plan-level: the optimizer must pick the kernel for this forest on
    // its own, from costs — no placement hint in the query.
    let session = RavenSession::with_config(SessionConfig::default());
    data.register(session.catalog()).expect("register");
    session.store_model("rf", model).expect("store");
    let explain = session
        .explain(
            "SELECT p.s FROM PREDICT(MODEL = 'rf', DATA = \
             (SELECT * FROM patient_info AS pi \
              JOIN blood_tests AS bt ON pi.id = bt.id \
              JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
             WITH (s FLOAT) AS p",
        )
        .expect("explain");
    let placed = explain.optimized_plan.contains("KernelPredict");
    println!(
        "  cost-based placement picked the kernel automatically: {placed}  \
         ({})",
        explain.report_summary,
    );
    assert!(placed, "optimizer failed to place the forest on the kernel");
}

fn main() {
    let rows = if full_scale() { 200_000 } else { 20_000 };
    bench_kernel_placement(rows);
    bench_plan_cache(rows);
    bench_result_cache(rows);
    bench_template_cache(rows.min(20_000));
    bench_concurrency(rows);
    bench_network_path(rows);
    bench_pipelining(rows);
    bench_micro_batching(rows);
    bench_adaptive_flush(rows);
    bench_multi_tenant(rows);
    bench_tracing_overhead(rows.min(20_000));
}
