//! Offline stand-in for the slice of the `bytes` crate the wire codec
//! uses: `Bytes`/`BytesMut` plus the `Buf`/`BufMut` accessor methods.
//! `Bytes` is a cheaply-cloneable shared view; `Buf` getters consume
//! from the front like the real crate's cursor semantics.

use std::sync::Arc;

/// Immutable shared byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// A view of a sub-range of the readable bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off and return the first `n` bytes, advancing self past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-side accessors (consume from the front).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

/// Write-side accessors (append at the back).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(42);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        let tail = r.split_to(2);
        assert_eq!(tail.to_vec(), b"hi");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from_vec(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4]);
    }
}
