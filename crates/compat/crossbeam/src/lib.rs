//! Offline stand-in for the slice of the `crossbeam` crate the engine
//! uses: `crossbeam::thread::scope` with spawn-taking-scope closures.
//! Backed by `std::thread::scope`; child panics are converted into the
//! `Err` return that `crossbeam` callers expect (std would instead
//! propagate the panic out of `scope`).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to `scope`'s closure and to every spawned
    /// thread's closure (crossbeam lets children spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope { inner: self.inner };
            self.inner.spawn(move || f(&child))
        }
    }

    /// Run `f` with a scope in which borrowing-threads can be spawned;
    /// all are joined before returning. Returns `Err` if any child (or
    /// `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1, 2, 3, 4];
        let mut out = vec![0; 4];
        super::thread::scope(|scope| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                scope.spawn(move |_| *slot = v * 10);
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
