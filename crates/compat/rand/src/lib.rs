//! Offline stand-in for the slice of the `rand` crate the workspace
//! uses: `StdRng::seed_from_u64` plus `Rng::{gen, gen_range, gen_bool}`.
//! Backed by SplitMix64 — statistically fine for data generation and
//! randomized model initialization; not cryptographic.

use std::ops::Range;

pub mod rngs {
    /// Deterministic 64-bit PRNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize, isize);

macro_rules! int_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range_inclusive!(i32, i64, u32, u64, usize, isize);

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..3.5f64);
            assert!((-2.5..3.5).contains(&f));
            let i = rng.gen_range(-3..9i64);
            assert!((-3..9).contains(&i));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }
}
