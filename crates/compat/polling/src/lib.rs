//! Offline stand-in for the slice of the `polling` crate the reactor in
//! `raven-server` uses: a **level-triggered readiness poller** with
//! per-registration interest flags and a cross-thread waker.
//!
//! The container this workspace builds in has no registry access, so —
//! like the sibling `compat` crates — this reimplements just the surface
//! the codebase needs on top of the platform's own readiness syscalls,
//! called through raw `extern "C"` declarations (std links libc on every
//! supported unix, so no external crate is required):
//!
//! * **Linux**: `epoll_create1` / `epoll_ctl` / `epoll_wait`;
//! * **other unixes**: `poll(2)` over a registration table (O(n) per
//!   wait, fine for the connection counts tests run at).
//!
//! Semantics are deliberately minimal and uniform across backends:
//!
//! * registrations are **level-triggered**: as long as a socket stays
//!   readable/writable and the interest is set, every `wait` reports it;
//! * `Event { key, readable, writable }` — errors and hang-ups are
//!   folded into *both* flags so the owner discovers them via the
//!   subsequent `read`/`write` returning `0`/`Err`, which is the code
//!   path it must handle anyway;
//! * [`Poller::notify`] wakes a concurrent or future `wait` from any
//!   thread (self-pipe pattern); the wake-up is swallowed internally and
//!   never surfaces as an event.
//!
//! ```no_run
//! use polling::{Event, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poller = Poller::new().unwrap();
//! poller.add(listener.as_raw_fd(), 7, true, false).unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(std::time::Duration::from_millis(10))).unwrap();
//! for ev in &events {
//!     assert_eq!(ev.key, 7);
//! }
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

#[cfg(not(unix))]
compile_error!("the polling compat shim only supports unix targets");

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Reserved registration key for the internal notify pipe; user keys
/// must stay below it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the file descriptor was registered under.
    pub key: usize,
    /// Readable now (or peer closed / error — a read will tell).
    pub readable: bool,
    /// Writable now (or error — a write will tell).
    pub writable: bool,
}

/// A level-triggered readiness poller. All methods take `&self`; `wait`
/// should be called from one thread at a time (the reactor), while
/// `add`/`modify`/`delete`/`notify` may be called from any thread.
pub struct Poller {
    backend: backend::Backend,
    /// Read end of the self-pipe, registered under [`NOTIFY_KEY`].
    wake_rx: UnixStream,
    /// Write end; one byte here makes `wait` return promptly.
    wake_tx: UnixStream,
    /// Collapses notify storms into one pipe write between waits.
    notified: AtomicBool,
}

impl Poller {
    /// Create a poller with its wake-up pipe already registered.
    pub fn new() -> io::Result<Poller> {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let backend = backend::Backend::new()?;
        let poller = Poller {
            backend,
            wake_rx,
            wake_tx,
            notified: AtomicBool::new(false),
        };
        poller
            .backend
            .add(poller.wake_rx.as_raw_fd(), NOTIFY_KEY, true, false)?;
        Ok(poller)
    }

    /// Register `fd` under `key` with the given interest. The fd must
    /// already be non-blocking; `key` must be unique among live
    /// registrations and below [`NOTIFY_KEY`].
    pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key reserved for the poller's waker",
            ));
        }
        self.backend.add(fd, key, readable, writable)
    }

    /// Replace the interest set of an existing registration.
    pub fn modify(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
        self.backend.modify(fd, key, readable, writable)
    }

    /// Remove a registration. Safe to call right before closing the fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.backend.delete(fd)
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or [`Poller::notify`] is called.
    /// Ready events are appended to `events` (cleared first). Returns
    /// the number of events delivered — zero means timeout or wake-up.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(events, timeout)?;
        // Swallow the waker: drain the pipe and drop its event.
        if let Some(pos) = events.iter().position(|e| e.key == NOTIFY_KEY) {
            events.remove(pos);
            let mut sink = [0u8; 64];
            loop {
                match io::Read::read(&mut (&self.wake_rx), &mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
            self.notified.store(false, Ordering::Release);
        }
        Ok(events.len())
    }

    /// Wake a concurrent (or the next) [`Poller::wait`] from any thread.
    /// Idempotent between waits: repeat notifies collapse into one byte.
    pub fn notify(&self) -> io::Result<()> {
        if self.notified.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        match io::Write::write(&mut (&self.wake_tx), &[1u8]) {
            Ok(_) => Ok(()),
            // Pipe full: a wake-up is already pending, which is all
            // notify promises.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    //! epoll: O(1) readiness delivery, the production path.

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel ABI packs epoll_event on x86; other arches align it.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Backend {
        epfd: i32,
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut ev = 0;
        if readable {
            ev |= EPOLLIN;
        }
        if writable {
            ev |= EPOLLOUT;
        }
        ev
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, key: usize) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest(readable, writable), key)
        }

        pub fn modify(
            &self,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest(readable, writable), key)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<super::Duration>,
        ) -> io::Result<()> {
            let timeout_ms = timeout
                .map(|d| i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX))
                .unwrap_or(-1);
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n as usize] {
                let bits = ev.events;
                let broken = bits & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    key: ev.data as usize,
                    readable: bits & EPOLLIN != 0 || broken,
                    writable: bits & EPOLLOUT != 0 || broken,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! poll(2): portable fallback, O(registrations) per wait.

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    #[derive(Clone, Copy)]
    struct Registration {
        fd: RawFd,
        key: usize,
        events: i16,
    }

    pub struct Backend {
        registered: Mutex<Vec<Registration>>,
    }

    fn interest(readable: bool, writable: bool) -> i16 {
        let mut ev = 0;
        if readable {
            ev |= POLLIN;
        }
        if writable {
            ev |= POLLOUT;
        }
        ev
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            let mut regs = self.registered.lock().unwrap();
            if regs.iter().any(|r| r.fd == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            regs.push(Registration {
                fd,
                key,
                events: interest(readable, writable),
            });
            Ok(())
        }

        pub fn modify(
            &self,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut regs = self.registered.lock().unwrap();
            for r in regs.iter_mut() {
                if r.fd == fd {
                    r.key = key;
                    r.events = interest(readable, writable);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut regs = self.registered.lock().unwrap();
            let before = regs.len();
            regs.retain(|r| r.fd != fd);
            if regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<super::Duration>,
        ) -> io::Result<()> {
            let snapshot: Vec<Registration> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|r| PollFd {
                    fd: r.fd,
                    events: r.events,
                    revents: 0,
                })
                .collect();
            let timeout_ms = timeout
                .map(|d| i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX))
                .unwrap_or(-1);
            let n = loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
                if ret >= 0 {
                    break ret;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, reg) in fds.iter().zip(&snapshot) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let broken = bits & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    key: reg.key,
                    readable: bits & POLLIN != 0 || broken,
                    writable: bits & POLLOUT != 0 || broken,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable));
    }

    #[test]
    fn interest_modification_is_respected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Write interest only: an idle socket is immediately writable.
        poller.add(client.as_raw_fd(), 2, false, true).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.writable));

        // Flip to read interest: quiet until the peer writes.
        poller.modify(client.as_raw_fd(), 2, true, false).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no data yet: {events:?}");
        server.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.readable));
        let mut byte = [0u8; 1];
        (&client).read_exact(&mut byte).unwrap();

        poller.delete(client.as_raw_fd()).unwrap();
        server.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "deleted fd must not report: {events:?}");
    }

    #[test]
    fn notify_wakes_a_blocked_wait_and_is_swallowed() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = {
            let poller = poller.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                poller.notify().unwrap();
            })
        };
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "the waker never surfaces as an event");
        assert!(start.elapsed() < Duration::from_secs(10));
        waker.join().unwrap();

        // Repeat notifies collapse; the next wait returns promptly once.
        poller.notify().unwrap();
        poller.notify().unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.is_empty());
    }
}
