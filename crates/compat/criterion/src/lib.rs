//! Offline stand-in for the slice of the `criterion` crate the bench
//! targets use. It is a timing harness, not a statistics engine: each
//! benchmark runs a warm-up pass plus `sample_size` timed iterations
//! and prints the mean wall time. Bench targets must set
//! `harness = false` (as with real criterion).

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{p}"),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(path: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {path:<56} {:>12.3?}/iter ({samples} iters)", b.mean);
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        label: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let path = format!("{}/{label}", self.name);
        run_one(&path, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.label);
        run_one(&path, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_mean() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
