//! Offline stand-in for the slice of the `proptest` crate the test
//! suites use: the `proptest!` macro, range/vec/tuple/`Just`/`prop_map`
//! strategies, `prop_oneof!`, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **deterministic** (seeded from the test name, so CI
//! failures reproduce locally with no state file), and there is **no
//! shrinking** — a failing case panics with the generated values
//! visible via the assertion message.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    ///
    /// Precedence matches real proptest: the `PROPTEST_CASES`
    /// environment variable seeds the *default* case count, while an
    /// explicit `with_cases(n)` always wins — a suite that sized its
    /// workload deliberately keeps that size regardless of environment.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(64),
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    use rand::{Rng, SeedableRng, StdRng};

    /// Deterministic generator seeded from the test name (the sibling
    /// `rand` shim's SplitMix64 underneath).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            self.inner.gen_range(0..n)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_oneof!` combinator: uniform choice among strategies.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range");
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`fn@vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            x in -5.0..5.0f64,
            (a, b) in (0..10i64, 0..10i64),
            v in crate::collection::vec(0..100usize, 1..8),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_and_map(
            s in prop_oneof![
                (0.0..1.0f64).prop_map(|v| format!("f{v:.2}")),
                Just("fixed".to_string()),
            ],
        ) {
            prop_assert!(s.starts_with('f'));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::deterministic("t");
            (0..5)
                .map(|_| (0.0..1.0f64).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_once(), gen_once());
    }
}
