//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The workspace builds with no network access, so the handful of
//! external crates the code uses are provided as minimal local shims
//! with API-compatible surfaces. This one maps `parking_lot`'s
//! non-poisoning locks onto the standard library's locks, recovering
//! from poison instead of propagating it (matching `parking_lot`'s
//! semantics of simply releasing the lock on panic).

use std::sync::{PoisonError, TryLockError};

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that does not poison: `lock` always succeeds.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
