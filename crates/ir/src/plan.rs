//! The unified plan: relational + ML + tensor + UDF operators.

use crate::error::IrError;
use crate::expr::{AggFunc, Expr};
use crate::Result;
use raven_data::{DataType, Field, Schema, Value};
use raven_ml::{FlatForest, KMeans, Pipeline};
use raven_tensor::Graph;
use std::fmt;
use std::sync::Arc;

/// Join kinds (the paper's workloads use inner equi-joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
}

/// Device placement for tensor execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Single-threaded CPU (standalone-runtime configuration).
    CpuSingle,
    /// Multi-threaded CPU (the in-database auto-parallel configuration).
    CpuParallel,
    /// The simulated GPU.
    Gpu,
}

/// How a `Predict` operator is executed (paper §5, in decreasing level of
/// integration with the database engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// In-process: the ML runtime is linked into the engine (Raven).
    InProcess,
    /// Out-of-process external runtime (`sp_execute_external_script`;
    /// Raven Ext): pays process startup + data transfer.
    OutOfProcess,
    /// Containerized REST endpoint: highest isolation, highest overhead.
    Container,
}

/// A named reference to a stored model, resolved to a concrete pipeline.
#[derive(Debug, Clone)]
pub struct ModelRef {
    pub name: String,
    pub pipeline: Arc<Pipeline>,
}

impl PartialEq for ModelRef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.pipeline == other.pipeline
    }
}

/// A plan node in Raven's unified IR.
///
/// Operator categories (paper §3.1): `Scan`..`Limit` are relational
/// algebra (RA); `Predict` and `ClusteredPredict` are classical-ML
/// operators (MLD); `TensorPredict` is the linear-algebra category (LA) —
/// a whole translated pipeline executed by the tensor runtime; `Udf`
/// wraps non-analyzable code as a black box.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base table scan.
    Scan { table: String, schema: Arc<Schema> },
    /// Row filter.
    Filter { input: Box<Plan>, predicate: Expr },
    /// Projection: `(expression, output name)` pairs.
    Project {
        input: Box<Plan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Inner equi-join on one key pair.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        left_key: String,
        right_key: String,
        kind: JoinKind,
    },
    /// Group-by aggregation: `(func, input column, output name)`.
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<String>,
        aggregates: Vec<(AggFunc, String, String)>,
    },
    /// Bag union of plans with identical schemas.
    Union { inputs: Vec<Plan> },
    /// Sort by one column.
    Sort {
        input: Box<Plan>,
        column: String,
        descending: bool,
    },
    /// Row-count limit.
    Limit { input: Box<Plan>, fetch: usize },
    /// Classical model-pipeline scoring (MLD). Appends `output` (Float64).
    Predict {
        input: Box<Plan>,
        model: ModelRef,
        output: String,
        mode: ExecutionMode,
    },
    /// NN-translated scoring (LA): the pipeline compiled to a tensor graph
    /// executed by the integrated tensor runtime. The pipeline is retained
    /// for raw input encoding (categorical → index).
    TensorPredict {
        input: Box<Plan>,
        model: ModelRef,
        graph: Arc<Graph>,
        output: String,
        device: Device,
    },
    /// Columnar-kernel scoring: the tree/forest pipeline flattened into a
    /// contiguous node-array layout ([`FlatForest`]) traversed branchlessly
    /// one pass per tree over a whole morsel, with featurization fused into
    /// the column gather. Compiled at plan time by the cost-based placement
    /// rule; the pipeline is retained for raw input encoding.
    KernelPredict {
        input: Box<Plan>,
        model: ModelRef,
        flat: Arc<FlatForest>,
        output: String,
    },
    /// Model clustering (paper §4.1): route each row to a per-cluster
    /// specialized model; rows with no precompiled model use the fallback.
    ClusteredPredict {
        input: Box<Plan>,
        model: ModelRef,
        kmeans: Arc<KMeans>,
        /// Raw input columns the router clusters on (cheap, low-dimension).
        route_columns: Vec<String>,
        cluster_models: Vec<Arc<Pipeline>>,
        output: String,
    },
    /// Opaque user code the static analyzer could not translate.
    Udf {
        input: Box<Plan>,
        name: String,
        /// Columns the UDF consumes (everything, conservatively, if empty).
        inputs: Vec<String>,
        output: String,
    },
}

impl Plan {
    /// Output schema of this operator.
    pub fn schema(&self) -> Result<Arc<Schema>> {
        match self {
            Plan::Scan { schema, .. } => Ok(schema.clone()),
            Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                input.schema()
            }
            Plan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (expr, name) in exprs {
                    fields.push(Field::new(name.clone(), expr.data_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            Plan::Join { left, right, .. } => {
                Ok(Arc::new(left.schema()?.join(right.schema()?.as_ref())))
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for g in group_by {
                    let idx = in_schema.index_of(g)?;
                    fields.push(in_schema.field(idx)?.clone());
                }
                for (func, col, out) in aggregates {
                    let dtype = match func {
                        AggFunc::Count => DataType::Int64,
                        AggFunc::Avg => DataType::Float64,
                        AggFunc::Sum => {
                            let idx = in_schema.index_of(col)?;
                            match in_schema.field(idx)?.dtype {
                                DataType::Int64 => DataType::Int64,
                                _ => DataType::Float64,
                            }
                        }
                        AggFunc::Min | AggFunc::Max => {
                            let idx = in_schema.index_of(col)?;
                            in_schema.field(idx)?.dtype
                        }
                    };
                    fields.push(Field::new(out.clone(), dtype));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            Plan::Union { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| IrError::InvalidPlan("empty union".into()))?;
                let schema = first.schema()?;
                for other in &inputs[1..] {
                    let s = other.schema()?;
                    if s.fields().len() != schema.fields().len() {
                        return Err(IrError::InvalidPlan(
                            "union inputs have different widths".into(),
                        ));
                    }
                }
                Ok(schema)
            }
            Plan::Predict { input, output, .. }
            | Plan::TensorPredict { input, output, .. }
            | Plan::KernelPredict { input, output, .. }
            | Plan::ClusteredPredict { input, output, .. }
            | Plan::Udf { input, output, .. } => {
                let in_schema = input.schema()?;
                let mut fields = in_schema.fields().to_vec();
                fields.push(Field::new(output.clone(), DataType::Float64));
                Ok(Arc::new(Schema::new(fields)))
            }
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Predict { input, .. }
            | Plan::TensorPredict { input, .. }
            | Plan::KernelPredict { input, .. }
            | Plan::ClusteredPredict { input, .. }
            | Plan::Udf { input, .. }
            | Plan::Aggregate { input, .. } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Rewrite bottom-up: children are rebuilt first, then `f` is applied
    /// to the node. This is the workhorse of every optimizer rule.
    pub fn transform_up(self, f: &impl Fn(Plan) -> Plan) -> Plan {
        let rebuilt = match self {
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(input.transform_up(f)),
                predicate,
            },
            Plan::Project { input, exprs } => Plan::Project {
                input: Box::new(input.transform_up(f)),
                exprs,
            },
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
                kind,
            } => Plan::Join {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                left_key,
                right_key,
                kind,
            },
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => Plan::Aggregate {
                input: Box::new(input.transform_up(f)),
                group_by,
                aggregates,
            },
            Plan::Union { inputs } => Plan::Union {
                inputs: inputs.into_iter().map(|p| p.transform_up(f)).collect(),
            },
            Plan::Sort {
                input,
                column,
                descending,
            } => Plan::Sort {
                input: Box::new(input.transform_up(f)),
                column,
                descending,
            },
            Plan::Limit { input, fetch } => Plan::Limit {
                input: Box::new(input.transform_up(f)),
                fetch,
            },
            Plan::Predict {
                input,
                model,
                output,
                mode,
            } => Plan::Predict {
                input: Box::new(input.transform_up(f)),
                model,
                output,
                mode,
            },
            Plan::TensorPredict {
                input,
                model,
                graph,
                output,
                device,
            } => Plan::TensorPredict {
                input: Box::new(input.transform_up(f)),
                model,
                graph,
                output,
                device,
            },
            Plan::KernelPredict {
                input,
                model,
                flat,
                output,
            } => Plan::KernelPredict {
                input: Box::new(input.transform_up(f)),
                model,
                flat,
                output,
            },
            Plan::ClusteredPredict {
                input,
                model,
                kmeans,
                route_columns,
                cluster_models,
                output,
            } => Plan::ClusteredPredict {
                input: Box::new(input.transform_up(f)),
                model,
                kmeans,
                route_columns,
                cluster_models,
                output,
            },
            Plan::Udf {
                input,
                name,
                inputs,
                output,
            } => Plan::Udf {
                input: Box::new(input.transform_up(f)),
                name,
                inputs,
                output,
            },
            leaf @ Plan::Scan { .. } => leaf,
        };
        f(rebuilt)
    }

    /// Pre-order visit.
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        for child in self.children() {
            child.visit(f);
        }
    }

    /// Count nodes.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Short operator label (for EXPLAIN and metrics).
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table, .. } => format!("Scan({table})"),
            Plan::Filter { predicate, .. } => format!("Filter({predicate})"),
            Plan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| {
                        if matches!(e, Expr::Column(c) if c == n) {
                            n.clone()
                        } else {
                            format!("{e} AS {n}")
                        }
                    })
                    .collect();
                format!("Project({})", cols.join(", "))
            }
            Plan::Join {
                left_key,
                right_key,
                ..
            } => format!("Join({left_key} = {right_key})"),
            Plan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|(f, c, o)| format!("{}({c}) AS {o}", f.sql()))
                    .collect();
                format!(
                    "Aggregate(by=[{}], {})",
                    group_by.join(", "),
                    aggs.join(", ")
                )
            }
            Plan::Union { inputs } => format!("Union({} inputs)", inputs.len()),
            Plan::Sort {
                column, descending, ..
            } => format!(
                "Sort({column} {})",
                if *descending { "DESC" } else { "ASC" }
            ),
            Plan::Limit { fetch, .. } => format!("Limit({fetch})"),
            Plan::Predict {
                model,
                mode,
                output,
                ..
            } => format!(
                "Predict(model={}, mode={mode:?}, out={output}) [{}]",
                model.name,
                model.pipeline.estimator().describe()
            ),
            Plan::TensorPredict {
                model,
                graph,
                device,
                output,
                ..
            } => format!(
                "TensorPredict(model={}, device={device:?}, nodes={}, out={output})",
                model.name,
                graph.nodes.len()
            ),
            Plan::KernelPredict {
                model,
                flat,
                output,
                ..
            } => format!(
                "KernelPredict(model={}, {}, out={output})",
                model.name,
                flat.describe()
            ),
            Plan::ClusteredPredict {
                model,
                cluster_models,
                output,
                ..
            } => format!(
                "ClusteredPredict(model={}, clusters={}, out={output})",
                model.name,
                cluster_models.len()
            ),
            Plan::Udf { name, output, .. } => format!("Udf({name}, out={output})"),
        }
    }

    /// Visit every scalar expression embedded in the plan (filter
    /// predicates and projection expressions — the only operators that
    /// carry [`Expr`]s).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.visit(&mut |node| match node {
            Plan::Filter { predicate, .. } => f(predicate),
            Plan::Project { exprs, .. } => {
                for (e, _) in exprs {
                    f(e);
                }
            }
            _ => {}
        });
    }

    /// Number of positional parameters this plan expects (`?` in the SQL
    /// it was bound from): the highest [`Expr::Parameter`] index + 1, or
    /// 0 for a fully literal plan.
    pub fn parameter_count(&self) -> usize {
        let mut max: Option<usize> = None;
        self.visit_exprs(&mut |e| {
            if let Some(&m) = e.parameter_indices().last() {
                max = Some(max.map_or(m, |x: usize| x.max(m)));
            }
        });
        max.map_or(0, |m| m + 1)
    }

    /// Substitute positional parameters with concrete values throughout
    /// the plan (see [`Expr::bind_params`] for arity/type rules). This is
    /// the execution-time half of prepared statements: the cached,
    /// optimized template plan stays untouched; each request executes a
    /// cheap literal-plan copy.
    pub fn bind_parameters(&self, params: &[Value]) -> Result<Plan> {
        // Validate by visiting (no clones) so the consuming rewrite
        // below can substitute infallibly.
        let mut problem = None;
        self.visit_exprs(&mut |e| {
            if problem.is_none() {
                if let Err(err) = e.validate_params(params) {
                    problem = Some(err);
                }
            }
        });
        if let Some(e) = problem {
            return Err(e);
        }
        Ok(self.clone().transform_up(&|node| match node {
            Plan::Filter { input, predicate } => Plan::Filter {
                input,
                predicate: predicate.substitute_params(params),
            },
            Plan::Project { input, exprs } => Plan::Project {
                input,
                exprs: exprs
                    .into_iter()
                    .map(|(e, n)| (e.substitute_params(params), n))
                    .collect(),
            },
            other => other,
        }))
    }

    /// All tables scanned by the plan.
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Scan { table, .. } = p {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
        });
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(plan: &Plan, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), plan.label())?;
            for child in plan.children() {
                go(child, depth + 1, f)?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Transform};

    fn scan(table: &str, fields: &[(&str, DataType)]) -> Plan {
        Plan::Scan {
            table: table.into(),
            schema: Schema::from_pairs(fields).into_shared(),
        }
    }

    fn model_ref() -> ModelRef {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("age", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        ModelRef {
            name: "m".into(),
            pipeline: Arc::new(pipeline),
        }
    }

    #[test]
    fn schema_propagation() {
        let plan = Plan::Filter {
            input: Box::new(scan(
                "t",
                &[("id", DataType::Int64), ("age", DataType::Float64)],
            )),
            predicate: Expr::col("age").gt(Expr::lit(35i64)),
        };
        assert_eq!(plan.schema().unwrap().names(), vec!["id", "age"]);
    }

    #[test]
    fn project_schema_types() {
        let plan = Plan::Project {
            input: Box::new(scan("t", &[("age", DataType::Int64)])),
            exprs: vec![
                (Expr::col("age"), "age".into()),
                (
                    Expr::binary(BinOp::Multiply, Expr::col("age"), Expr::lit(2.0f64)),
                    "age2".into(),
                ),
            ],
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.field(0).unwrap().dtype, DataType::Int64);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Float64);
    }

    #[test]
    fn join_schema_concat() {
        let plan = Plan::Join {
            left: Box::new(scan("a", &[("a.id", DataType::Int64)])),
            right: Box::new(scan(
                "b",
                &[("b.id", DataType::Int64), ("bp", DataType::Float64)],
            )),
            left_key: "a.id".into(),
            right_key: "b.id".into(),
            kind: JoinKind::Inner,
        };
        assert_eq!(plan.schema().unwrap().names(), vec!["a.id", "b.id", "bp"]);
    }

    #[test]
    fn aggregate_schema_types() {
        let plan = Plan::Aggregate {
            input: Box::new(scan("t", &[("k", DataType::Utf8), ("v", DataType::Int64)])),
            group_by: vec!["k".into()],
            aggregates: vec![
                (AggFunc::Count, "v".into(), "n".into()),
                (AggFunc::Sum, "v".into(), "s".into()),
                (AggFunc::Avg, "v".into(), "a".into()),
                (AggFunc::Max, "k".into(), "m".into()),
            ],
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.names(), vec!["k", "n", "s", "a", "m"]);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Int64);
        assert_eq!(s.field(2).unwrap().dtype, DataType::Int64);
        assert_eq!(s.field(3).unwrap().dtype, DataType::Float64);
        assert_eq!(s.field(4).unwrap().dtype, DataType::Utf8);
    }

    #[test]
    fn predict_appends_output() {
        let plan = Plan::Predict {
            input: Box::new(scan("t", &[("age", DataType::Float64)])),
            model: model_ref(),
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.names(), vec!["age", "score"]);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Float64);
    }

    #[test]
    fn union_validation() {
        let a = scan("a", &[("x", DataType::Int64)]);
        let b = scan("b", &[("x", DataType::Int64)]);
        let ok = Plan::Union {
            inputs: vec![a.clone(), b],
        };
        assert!(ok.schema().is_ok());
        let bad = Plan::Union {
            inputs: vec![
                a,
                scan("c", &[("x", DataType::Int64), ("y", DataType::Bool)]),
            ],
        };
        assert!(bad.schema().is_err());
        assert!(Plan::Union { inputs: vec![] }.schema().is_err());
    }

    #[test]
    fn transform_up_rewrites() {
        let plan = Plan::Filter {
            input: Box::new(scan("t", &[("x", DataType::Int64)])),
            predicate: Expr::col("x").gt(Expr::lit(1i64)),
        };
        // Remove all filters.
        let stripped = plan.transform_up(&|p| match p {
            Plan::Filter { input, .. } => *input,
            other => other,
        });
        assert!(matches!(stripped, Plan::Scan { .. }));
    }

    #[test]
    fn visit_and_counters() {
        let plan = Plan::Limit {
            input: Box::new(Plan::Join {
                left: Box::new(scan("a", &[("id", DataType::Int64)])),
                right: Box::new(scan("b", &[("id2", DataType::Int64)])),
                left_key: "id".into(),
                right_key: "id2".into(),
                kind: JoinKind::Inner,
            }),
            fetch: 5,
        };
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.scanned_tables(), vec!["a", "b"]);
    }

    #[test]
    fn parameter_count_and_binding() {
        use raven_data::Value;
        let template = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(
                    "t",
                    &[("x", DataType::Float64), ("y", DataType::Int64)],
                )),
                predicate: Expr::col("x").gt(Expr::typed_param(0, DataType::Float64)),
            }),
            exprs: vec![(
                Expr::binary(
                    BinOp::Plus,
                    Expr::col("y"),
                    Expr::typed_param(1, DataType::Int64),
                ),
                "y2".into(),
            )],
        };
        assert_eq!(template.parameter_count(), 2);

        let bound = template
            .bind_parameters(&[Value::Int64(5), Value::Int64(7)])
            .unwrap();
        assert_eq!(bound.parameter_count(), 0);
        let Plan::Project { input, exprs } = &bound else {
            panic!("project on top");
        };
        assert_eq!(exprs[0].0.to_string(), "(y + 7)");
        let Plan::Filter { predicate, .. } = &**input else {
            panic!("filter below");
        };
        assert_eq!(predicate.to_string(), "(x > 5)");
        // The template itself is untouched.
        assert_eq!(template.parameter_count(), 2);

        // Arity/type errors surface without mutating anything.
        assert!(template.bind_parameters(&[Value::Int64(5)]).is_err());
        assert!(template
            .bind_parameters(&[Value::Utf8("a".into()), Value::Int64(7)])
            .is_err());
    }

    #[test]
    fn display_is_indented() {
        let plan = Plan::Filter {
            input: Box::new(scan("t", &[("x", DataType::Int64)])),
            predicate: Expr::col("x").gt(Expr::lit(1i64)),
        };
        let s = plan.to_string();
        assert!(s.starts_with("Filter"));
        assert!(s.contains("\n  Scan(t)"));
    }

    #[test]
    fn labels() {
        let p = scan("t", &[("x", DataType::Int64)]);
        assert_eq!(p.label(), "Scan(t)");
        let pr = Plan::Predict {
            input: Box::new(p),
            model: model_ref(),
            output: "y".into(),
            mode: ExecutionMode::OutOfProcess,
        };
        assert!(pr.label().contains("OutOfProcess"));
        assert!(pr.label().contains("LinearRegression"));
    }
}
