//! Predicate analysis: the bridge from relational predicates to model
//! optimizations.
//!
//! The cross optimizer needs three things from a predicate:
//! * its **conjuncts** (to push pieces independently);
//! * per-column **intervals** (`pregnant = 1` → `[1,1]`; `age > 35` →
//!   `(35, ∞)` approximated as `[35, ∞)`), which feed decision-tree
//!   pruning;
//! * per-column **constants** (point intervals and categorical
//!   equalities), which feed constant folding inside translated models
//!   and partial evaluation of linear models.

use crate::expr::{BinOp, Expr};
use raven_data::Value;
use raven_ml::tree::Interval;
use std::collections::HashMap;

/// Split a predicate into top-level AND-ed conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                go(left, out);
                go(right, out);
            }
            other => out.push(other),
        }
    }
    go(expr, &mut out);
    out
}

/// Rebuild a predicate from conjuncts (`true` for an empty list).
pub fn conjoin(parts: Vec<Expr>) -> Expr {
    parts
        .into_iter()
        .reduce(|a, b| a.and(b))
        .unwrap_or_else(|| Expr::lit(true))
}

/// Constraints extracted from a predicate, per column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnConstraints {
    /// Numeric interval constraints: column → interval.
    pub intervals: HashMap<String, Interval>,
    /// Categorical equality constraints: column → string value.
    pub equal_strings: HashMap<String, String>,
}

impl ColumnConstraints {
    /// Numeric constants implied by the constraints (point intervals).
    pub fn numeric_constants(&self) -> HashMap<String, f64> {
        self.intervals
            .iter()
            .filter(|(_, iv)| iv.is_point())
            .map(|(c, iv)| (c.clone(), iv.lo))
            .collect()
    }

    /// Merge another set of constraints (intersection semantics).
    pub fn merge(&mut self, other: &ColumnConstraints) {
        for (col, iv) in &other.intervals {
            let entry = self
                .intervals
                .entry(col.clone())
                .or_insert_with(Interval::all);
            *entry = entry.intersect(*iv);
        }
        for (col, v) in &other.equal_strings {
            self.equal_strings.insert(col.clone(), v.clone());
        }
    }

    /// True if nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty() && self.equal_strings.is_empty()
    }
}

/// Extract per-column constraints from a predicate.
///
/// Only constraints that hold for **every** surviving row are extracted,
/// so OR-ed and NOT-ed subtrees are skipped (sound over-approximation:
/// fewer constraints, never wrong ones). Strict inequalities are relaxed
/// to their closed form, which is safe for pruning (a branch is only
/// removed when provably unreachable under the *relaxed* bounds).
pub fn extract_constraints(expr: &Expr) -> ColumnConstraints {
    let mut out = ColumnConstraints::default();
    for conjunct in conjuncts(expr) {
        let Expr::Binary { op, left, right } = conjunct else {
            continue;
        };
        // Normalize to (column ∘ literal).
        let (col, op, value) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => (c, *op, v),
            (Expr::Literal(v), Expr::Column(c)) => (c, flip(*op), v),
            _ => continue,
        };
        match value {
            Value::Utf8(s) => {
                if op == BinOp::Eq {
                    out.equal_strings.insert(col.clone(), s.clone());
                }
            }
            numeric => {
                let Ok(v) = numeric.as_f64() else { continue };
                let interval = match op {
                    BinOp::Eq => Interval::point(v),
                    BinOp::Lt | BinOp::LtEq => Interval::at_most(v),
                    BinOp::Gt | BinOp::GtEq => Interval::at_least(v),
                    _ => continue,
                };
                let entry = out
                    .intervals
                    .entry(col.clone())
                    .or_insert_with(Interval::all);
                *entry = entry.intersect(interval);
            }
        }
    }
    out
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)))
            .and(Expr::col("c").lt(Expr::lit(3i64)));
        assert_eq!(conjuncts(&e).len(), 3);
        // OR is a single conjunct.
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .or(Expr::col("b").eq(Expr::lit(2i64)));
        assert_eq!(conjuncts(&e).len(), 1);
    }

    #[test]
    fn conjoin_roundtrip() {
        let parts = vec![
            Expr::col("a").gt(Expr::lit(1i64)),
            Expr::col("b").lt(Expr::lit(5i64)),
        ];
        let joined = conjoin(parts.clone());
        let split: Vec<Expr> = conjuncts(&joined).into_iter().cloned().collect();
        assert_eq!(split, parts);
        assert_eq!(conjoin(vec![]), Expr::lit(true));
    }

    #[test]
    fn equality_becomes_point_interval() {
        let c = extract_constraints(&Expr::col("pregnant").eq(Expr::lit(1i64)));
        assert_eq!(c.intervals["pregnant"], Interval::point(1.0));
        assert_eq!(c.numeric_constants()["pregnant"], 1.0);
    }

    #[test]
    fn range_predicates() {
        let e = Expr::col("age")
            .gt(Expr::lit(35i64))
            .and(Expr::col("age").lt_eq(Expr::lit(60i64)));
        let c = extract_constraints(&e);
        assert_eq!(c.intervals["age"], Interval { lo: 35.0, hi: 60.0 });
        assert!(c.numeric_constants().is_empty());
    }

    #[test]
    fn flipped_literal_side() {
        // 140 < bp  ≡  bp > 140.
        let e = Expr::binary(BinOp::Lt, Expr::lit(140i64), Expr::col("bp"));
        let c = extract_constraints(&e);
        assert_eq!(c.intervals["bp"], Interval::at_least(140.0));
    }

    #[test]
    fn string_equality_tracked_separately() {
        let e = Expr::col("dest").eq(Expr::lit("JFK"));
        let c = extract_constraints(&e);
        assert_eq!(c.equal_strings["dest"], "JFK");
        assert!(c.intervals.is_empty());
    }

    #[test]
    fn or_and_not_are_skipped() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .or(Expr::col("a").eq(Expr::lit(2i64)));
        assert!(extract_constraints(&e).is_empty());
        let e = Expr::Not(Box::new(Expr::col("a").eq(Expr::lit(1i64))));
        assert!(extract_constraints(&e).is_empty());
    }

    #[test]
    fn contradictory_constraints_yield_empty_interval() {
        let e = Expr::col("a")
            .gt(Expr::lit(10i64))
            .and(Expr::col("a").lt(Expr::lit(5i64)));
        let c = extract_constraints(&e);
        assert!(c.intervals["a"].is_empty());
    }

    #[test]
    fn merge_intersects() {
        let mut a = extract_constraints(&Expr::col("x").gt_eq(Expr::lit(0i64)));
        let b = extract_constraints(
            &Expr::col("x")
                .lt_eq(Expr::lit(10i64))
                .and(Expr::col("d").eq(Expr::lit("Y"))),
        );
        a.merge(&b);
        assert_eq!(a.intervals["x"], Interval { lo: 0.0, hi: 10.0 });
        assert_eq!(a.equal_strings["d"], "Y");
    }
}
