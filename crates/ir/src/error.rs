//! Error type for the IR crate.

use std::fmt;

/// Errors produced while constructing or analyzing IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A column referenced by an expression is missing from the schema.
    UnknownColumn(String),
    /// Expression typing failed.
    TypeError(String),
    /// A plan is structurally invalid.
    InvalidPlan(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            IrError::TypeError(msg) => write!(f, "type error: {msg}"),
            IrError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            IrError::Internal(msg) => write!(f, "internal IR error: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<raven_data::DataError> for IrError {
    fn from(e: raven_data::DataError) -> Self {
        match e {
            raven_data::DataError::FieldNotFound(name) => IrError::UnknownColumn(name),
            other => IrError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            IrError::UnknownColumn("bp".into()).to_string(),
            "unknown column: bp"
        );
    }

    #[test]
    fn from_data_error() {
        let e: IrError = raven_data::DataError::FieldNotFound("x".into()).into();
        assert_eq!(e, IrError::UnknownColumn("x".into()));
        let e: IrError = raven_data::DataError::TableNotFound("t".into()).into();
        assert!(matches!(e, IrError::Internal(_)));
    }
}
