//! # raven-ir
//!
//! Raven's **unified intermediate representation**: one plan language that
//! mixes relational-algebra operators, ML/featurizer operators, linear-
//! algebra (tensor) operators and opaque UDFs — §3 of *"Extending
//! Relational Query Processing with ML Inference"* (CIDR 2020).
//!
//! The point of unifying the IR (rather than treating the model as a black
//! box called from SQL) is that the optimizer can pass information *across*
//! the data/ML boundary: predicates flow into models (predicate-based
//! model pruning), model structure flows into the data plan
//! (model-projection pushdown), and operators can be *transformed* between
//! categories (model inlining turns an ML operator into a relational
//! expression; NN translation turns ML operators into tensor operators).
//!
//! Contents:
//! * [`expr`] — scalar expression language (predicates, projections,
//!   CASE expressions for inlined trees) with SQL rendering;
//! * [`plan`] — the operator tree: `Scan`/`Filter`/`Project`/`Join`/
//!   `Aggregate`/... (RA), `Predict` (MLD), `TensorPredict` (LA), `Udf`;
//! * [`analyze`] — predicate analysis: conjunct splitting, per-column
//!   interval extraction (the bridge into model pruning), implied
//!   constants;
//! * [`fingerprint`] — stable structural hashing of (plan, parameter
//!   values, dependency versions) for the serving layer's deterministic
//!   result cache.

pub mod analyze;
pub mod error;
pub mod expr;
pub mod fingerprint;
pub mod plan;

pub use error::IrError;
pub use expr::{AggFunc, BinOp, Expr};
pub use fingerprint::{FingerprintBuilder, PlanFingerprint};
pub use plan::{Device, ExecutionMode, JoinKind, ModelRef, Plan};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IrError>;
