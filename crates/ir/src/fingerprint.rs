//! Stable structural fingerprints over optimized plans — the key of the
//! serving layer's deterministic result cache.
//!
//! A [`PlanFingerprint`] identifies *what a query execution will
//! compute*: the full structure of the optimized plan (operators,
//! expressions, schemas, literal values), the bound parameter values of
//! this request, and the versions of every table and model the plan
//! touches. Two requests with equal fingerprints are guaranteed to run
//! the same operators over the same inputs — so, for a plan the
//! determinism analysis marks pure, their results are interchangeable
//! and the second execution can be skipped entirely.
//!
//! Design constraints, in order:
//!
//! * **Stability.** The hash must not change across processes or runs:
//!   no `RandomState`, no pointer identity, no iteration over unordered
//!   containers. Everything is hashed in plan order with explicit
//!   discriminant tags (so `Filter(Scan)` and `Scan` under a different
//!   parent cannot collide by concatenation).
//! * **No false sharing.** Any difference that could change the result —
//!   a literal, a parameter value, a column name, a sort direction, a
//!   model version — must land in the hash. Model *parameters* are not
//!   hashed structurally (a pipeline is an opaque blob here); instead
//!   the caller feeds each referenced model's store version via
//!   [`FingerprintBuilder::dependency`], which changes on every update.
//! * **Insensitivity to spelling.** The fingerprint hashes the *plan*,
//!   not the SQL text: whitespace, comments, and literal spelling
//!   (`1e1` vs `10.0`) vanish during lexing/normalization, so textual
//!   variants of one query converge on one fingerprint.
//!
//! 128 bits (two independently-seeded FNV-1a lanes) make accidental
//! collisions implausible at serving cache sizes; the cache layers
//! version-checked invalidation on top, so even a collision could only
//! conflate two *live* fingerprints, never resurrect a stale one.
//!
//! ```
//! use raven_ir::fingerprint::FingerprintBuilder;
//! use raven_ir::{Expr, Plan};
//! use raven_data::{DataType, Schema, Value};
//!
//! let plan = |threshold: i64| Plan::Filter {
//!     input: Box::new(Plan::Scan {
//!         table: "t".into(),
//!         schema: Schema::from_pairs(&[("x", DataType::Int64)]).into_shared(),
//!     }),
//!     predicate: Expr::col("x").gt(Expr::lit(threshold)),
//! };
//! let fp = |p: &Plan| FingerprintBuilder::new().plan(p).finish();
//! assert_eq!(fp(&plan(30)), fp(&plan(30)), "same plan, same fingerprint");
//! assert_ne!(fp(&plan(30)), fp(&plan(31)), "a literal is part of the result");
//!
//! // Parameter values distinguish requests sharing one template plan:
//! let template = plan(0); // stand-in; real templates carry Expr::Parameter
//! let with = |v: i64| FingerprintBuilder::new()
//!     .plan(&template)
//!     .params(&[Value::Int64(v)])
//!     .finish();
//! assert_ne!(with(1), with(2));
//! ```

use crate::expr::{AggFunc, BinOp, Expr};
use crate::plan::{Device, ExecutionMode, JoinKind, Plan};
use raven_data::{DataType, Schema, Value};
use std::fmt;

/// A 128-bit stable structural hash identifying one deterministic
/// computation (plan × parameters × dependency versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u64, pub u64);

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Two FNV-1a lanes with distinct offset bases; every input byte feeds
/// both. FNV is not cryptographic — it does not need to be: fingerprints
/// never cross a trust boundary (clients cannot submit them) and the
/// cache tolerates collisions only between live, version-current entries.
#[derive(Clone, Debug)]
struct Lanes {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x100000001b3;

impl Lanes {
    fn new() -> Self {
        Lanes {
            a: 0xcbf29ce484222325,
            // Second lane: a different, odd offset basis decorrelates it
            // from lane `a` for every input longer than zero bytes.
            b: 0x6c62272e07bb0142,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte.rotate_left(3) as u64).wrapping_mul(FNV_PRIME);
        }
    }
}

/// Accumulates a [`PlanFingerprint`] from a plan, a parameter vector,
/// and a set of named dependency versions. Order of calls matters and is
/// part of the hash — callers must feed the parts in one fixed order
/// (the serving layer uses plan → params → dependencies).
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    lanes: Lanes,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

impl FingerprintBuilder {
    pub fn new() -> Self {
        FingerprintBuilder {
            lanes: Lanes::new(),
        }
    }

    /// Hash the tenant (namespace) this computation runs in. Two tenants
    /// may hold same-named tables and models with different contents, so
    /// a fingerprint that ignored the tenant could conflate their
    /// results; feeding the tenant first makes cross-tenant collision
    /// structurally impossible even if every other input matches. The
    /// serving layer calls this before [`FingerprintBuilder::plan`].
    pub fn tenant(mut self, tenant: &str) -> Self {
        self.lanes.write(b"tenant");
        write_str(&mut self.lanes, tenant);
        self
    }

    /// Hash the full structure of `plan` (operators, expressions,
    /// schemas, literals, parameter slots).
    pub fn plan(mut self, plan: &Plan) -> Self {
        hash_plan(&mut self.lanes, plan);
        self
    }

    /// Hash this request's bound parameter values, position-sensitively.
    pub fn params(mut self, params: &[Value]) -> Self {
        self.lanes.write(b"params");
        write_len(&mut self.lanes, params.len());
        for value in params {
            hash_value(&mut self.lanes, value);
        }
        self
    }

    /// Hash one named dependency version — e.g. `("model", "m", 3)` or
    /// `("table", "patients", 7)`. Feed dependencies in a deterministic
    /// (sorted) order.
    pub fn dependency(mut self, kind: &str, name: &str, version: u64) -> Self {
        self.lanes.write(b"dep");
        write_str(&mut self.lanes, kind);
        write_str(&mut self.lanes, name);
        self.lanes.write(&version.to_le_bytes());
        self
    }

    pub fn finish(self) -> PlanFingerprint {
        PlanFingerprint(self.lanes.a, self.lanes.b)
    }
}

/// Length-prefix strings and sequences so `["ab", "c"]` and `["a", "bc"]`
/// cannot collide by concatenation.
fn write_len(lanes: &mut Lanes, len: usize) {
    lanes.write(&(len as u64).to_le_bytes());
}

fn write_str(lanes: &mut Lanes, s: &str) {
    write_len(lanes, s.len());
    lanes.write(s.as_bytes());
}

fn tag(lanes: &mut Lanes, t: u8) {
    lanes.write(&[t]);
}

fn hash_dtype(lanes: &mut Lanes, dtype: DataType) {
    tag(
        lanes,
        match dtype {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Bool => 2,
            DataType::Utf8 => 3,
        },
    );
}

fn hash_value(lanes: &mut Lanes, value: &Value) {
    hash_dtype(lanes, value.data_type());
    match value {
        Value::Int64(v) => lanes.write(&v.to_le_bytes()),
        // IEEE bit pattern: -0.0 and 0.0 hash differently, which is the
        // safe direction (distinct entries, never a false share), and
        // NaNs hash by their payload.
        Value::Float64(v) => lanes.write(&v.to_bits().to_le_bytes()),
        Value::Bool(b) => tag(lanes, *b as u8),
        Value::Utf8(s) => write_str(lanes, s),
    }
}

fn hash_schema(lanes: &mut Lanes, schema: &Schema) {
    write_len(lanes, schema.fields().len());
    for field in schema.fields() {
        write_str(lanes, &field.name);
        hash_dtype(lanes, field.dtype);
    }
}

fn hash_expr(lanes: &mut Lanes, expr: &Expr) {
    match expr {
        Expr::Column(name) => {
            tag(lanes, 0);
            write_str(lanes, name);
        }
        Expr::Literal(v) => {
            tag(lanes, 1);
            hash_value(lanes, v);
        }
        Expr::Parameter { index, dtype } => {
            tag(lanes, 2);
            lanes.write(&(*index as u64).to_le_bytes());
            match dtype {
                Some(d) => hash_dtype(lanes, *d),
                None => tag(lanes, 0xFF),
            }
        }
        Expr::Binary { op, left, right } => {
            tag(lanes, 3);
            tag(lanes, binop_tag(*op));
            hash_expr(lanes, left);
            hash_expr(lanes, right);
        }
        Expr::Not(inner) => {
            tag(lanes, 4);
            hash_expr(lanes, inner);
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            tag(lanes, 5);
            write_len(lanes, branches.len());
            for (cond, value) in branches {
                hash_expr(lanes, cond);
                hash_expr(lanes, value);
            }
            hash_expr(lanes, else_expr);
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => 0,
        BinOp::NotEq => 1,
        BinOp::Lt => 2,
        BinOp::LtEq => 3,
        BinOp::Gt => 4,
        BinOp::GtEq => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
        BinOp::Plus => 8,
        BinOp::Minus => 9,
        BinOp::Multiply => 10,
        BinOp::Divide => 11,
    }
}

fn aggfunc_tag(func: AggFunc) -> u8 {
    match func {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn hash_plan(lanes: &mut Lanes, plan: &Plan) {
    match plan {
        Plan::Scan { table, schema } => {
            tag(lanes, 0);
            write_str(lanes, table);
            hash_schema(lanes, schema);
        }
        Plan::Filter { input, predicate } => {
            tag(lanes, 1);
            hash_expr(lanes, predicate);
            hash_plan(lanes, input);
        }
        Plan::Project { input, exprs } => {
            tag(lanes, 2);
            write_len(lanes, exprs.len());
            for (expr, name) in exprs {
                hash_expr(lanes, expr);
                write_str(lanes, name);
            }
            hash_plan(lanes, input);
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            tag(lanes, 3);
            write_str(lanes, left_key);
            write_str(lanes, right_key);
            tag(
                lanes,
                match kind {
                    JoinKind::Inner => 0,
                },
            );
            hash_plan(lanes, left);
            hash_plan(lanes, right);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            tag(lanes, 4);
            write_len(lanes, group_by.len());
            for g in group_by {
                write_str(lanes, g);
            }
            write_len(lanes, aggregates.len());
            for (func, col, out) in aggregates {
                tag(lanes, aggfunc_tag(*func));
                write_str(lanes, col);
                write_str(lanes, out);
            }
            hash_plan(lanes, input);
        }
        Plan::Union { inputs } => {
            tag(lanes, 5);
            write_len(lanes, inputs.len());
            for p in inputs {
                hash_plan(lanes, p);
            }
        }
        Plan::Sort {
            input,
            column,
            descending,
        } => {
            tag(lanes, 6);
            write_str(lanes, column);
            tag(lanes, *descending as u8);
            hash_plan(lanes, input);
        }
        Plan::Limit { input, fetch } => {
            tag(lanes, 7);
            lanes.write(&(*fetch as u64).to_le_bytes());
            hash_plan(lanes, input);
        }
        Plan::Predict {
            input,
            model,
            output,
            mode,
        } => {
            tag(lanes, 8);
            // Model identity is (name, version-fed-by-caller); the
            // pipeline's parameters are deliberately not walked here.
            write_str(lanes, &model.name);
            write_str(lanes, output);
            tag(
                lanes,
                match mode {
                    ExecutionMode::InProcess => 0,
                    ExecutionMode::OutOfProcess => 1,
                    ExecutionMode::Container => 2,
                },
            );
            hash_plan(lanes, input);
        }
        Plan::TensorPredict {
            input,
            model,
            graph,
            output,
            device,
        } => {
            tag(lanes, 9);
            write_str(lanes, &model.name);
            write_str(lanes, output);
            tag(
                lanes,
                match device {
                    Device::CpuSingle => 0,
                    Device::CpuParallel => 1,
                    Device::Gpu => 2,
                },
            );
            // The graph is compiled from the model at prepare time; its
            // shape pins the translation that actually executes.
            write_len(lanes, graph.nodes.len());
            hash_plan(lanes, input);
        }
        Plan::KernelPredict {
            input,
            model,
            flat,
            output,
        } => {
            tag(lanes, 12);
            write_str(lanes, &model.name);
            write_str(lanes, output);
            // The flat layout is compiled from the model at prepare time;
            // its shape pins the compilation that actually executes.
            write_len(lanes, flat.n_nodes());
            write_len(lanes, flat.n_trees());
            write_len(lanes, flat.n_raw());
            hash_plan(lanes, input);
        }
        Plan::ClusteredPredict {
            input,
            model,
            kmeans: _,
            route_columns,
            cluster_models,
            output,
        } => {
            tag(lanes, 10);
            write_str(lanes, &model.name);
            write_str(lanes, output);
            write_len(lanes, route_columns.len());
            for c in route_columns {
                write_str(lanes, c);
            }
            write_len(lanes, cluster_models.len());
            hash_plan(lanes, input);
        }
        Plan::Udf {
            input,
            name,
            inputs,
            output,
        } => {
            tag(lanes, 11);
            write_str(lanes, name);
            write_len(lanes, inputs.len());
            for c in inputs {
                write_str(lanes, c);
            }
            write_str(lanes, output);
            hash_plan(lanes, input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::Schema;

    fn scan(table: &str) -> Plan {
        Plan::Scan {
            table: table.into(),
            schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
        }
    }

    fn fp(plan: &Plan) -> PlanFingerprint {
        FingerprintBuilder::new().plan(plan).finish()
    }

    #[test]
    fn identical_plans_agree_and_structure_matters() {
        let a = Plan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::col("x").gt(Expr::lit(1.5f64)),
        };
        let b = Plan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::col("x").gt(Expr::lit(1.5f64)),
        };
        assert_eq!(fp(&a), fp(&b));
        // A different literal, table, or operator each move the hash.
        let c = Plan::Filter {
            input: Box::new(scan("t")),
            predicate: Expr::col("x").gt(Expr::lit(2.5f64)),
        };
        assert_ne!(fp(&a), fp(&c));
        assert_ne!(fp(&scan("t")), fp(&scan("u")));
        let sorted = Plan::Sort {
            input: Box::new(scan("t")),
            column: "x".into(),
            descending: false,
        };
        let sorted_desc = Plan::Sort {
            input: Box::new(scan("t")),
            column: "x".into(),
            descending: true,
        };
        assert_ne!(fp(&sorted), fp(&sorted_desc));
    }

    #[test]
    fn parent_child_nesting_cannot_collide_by_concatenation() {
        // Filter(Scan) vs Scan followed by "filter-like" bytes would
        // collide in a naive concatenation scheme; the discriminant tags
        // plus length prefixes prevent it.
        let nested = Plan::Limit {
            input: Box::new(Plan::Limit {
                input: Box::new(scan("t")),
                fetch: 1,
            }),
            fetch: 2,
        };
        let flat = Plan::Limit {
            input: Box::new(Plan::Limit {
                input: Box::new(scan("t")),
                fetch: 2,
            }),
            fetch: 1,
        };
        assert_ne!(fp(&nested), fp(&flat));
    }

    #[test]
    fn params_are_position_and_type_sensitive() {
        let plan = scan("t");
        let with = |params: &[Value]| {
            FingerprintBuilder::new()
                .plan(&plan)
                .params(params)
                .finish()
        };
        assert_eq!(
            with(&[Value::Int64(1), Value::Int64(2)]),
            with(&[Value::Int64(1), Value::Int64(2)])
        );
        assert_ne!(
            with(&[Value::Int64(1), Value::Int64(2)]),
            with(&[Value::Int64(2), Value::Int64(1)])
        );
        // Int64(1) and Float64(1.0) are distinct cache identities: both
        // would be *correct* to share, but distinctness is the safe
        // default and costs only a duplicate entry.
        assert_ne!(with(&[Value::Int64(1)]), with(&[Value::Float64(1.0)]));
        // Concatenation safety across the string boundary.
        assert_ne!(
            with(&[Value::Utf8("ab".into()), Value::Utf8("c".into())]),
            with(&[Value::Utf8("a".into()), Value::Utf8("bc".into())])
        );
    }

    #[test]
    fn tenants_move_the_fingerprint() {
        // Identical plan, params, and dependency versions in two tenants
        // must never share a fingerprint: the tenants may hold
        // same-named tables/models with entirely different contents.
        let plan = scan("t");
        let with = |tenant: &str| {
            FingerprintBuilder::new()
                .tenant(tenant)
                .plan(&plan)
                .params(&[Value::Int64(30)])
                .dependency("table", "t", 1)
                .finish()
        };
        assert_eq!(with("acme"), with("acme"));
        assert_ne!(with("acme"), with("globex"));
        // Concatenation safety at the tenant boundary: the tenant is
        // length-prefixed, so ("ab" + table "t") cannot collide with
        // ("a" + table "bt")-shaped inputs.
        assert_ne!(
            FingerprintBuilder::new()
                .tenant("ab")
                .plan(&scan("t"))
                .finish(),
            FingerprintBuilder::new()
                .tenant("a")
                .plan(&scan("bt"))
                .finish()
        );
    }

    #[test]
    fn dependency_versions_move_the_fingerprint() {
        let plan = scan("t");
        let with = |v: u64| {
            FingerprintBuilder::new()
                .plan(&plan)
                .dependency("model", "m", v)
                .finish()
        };
        assert_eq!(with(1), with(1));
        assert_ne!(with(1), with(2));
        assert_ne!(
            FingerprintBuilder::new()
                .plan(&plan)
                .dependency("model", "m", 1)
                .finish(),
            FingerprintBuilder::new()
                .plan(&plan)
                .dependency("table", "m", 1)
                .finish()
        );
    }

    #[test]
    fn stable_across_builders_and_display_is_hex() {
        // The fingerprint must be a pure function of its inputs — no
        // per-process randomness. Freeze one value as a regression
        // anchor: if this changes, every persisted fingerprint breaks.
        let plan = scan("t");
        let one = FingerprintBuilder::new()
            .plan(&plan)
            .params(&[Value::Int64(30)])
            .dependency("table", "t", 1)
            .finish();
        let two = FingerprintBuilder::new()
            .plan(&plan)
            .params(&[Value::Int64(30)])
            .dependency("table", "t", 1)
            .finish();
        assert_eq!(one, two);
        let shown = one.to_string();
        assert_eq!(shown.len(), 32);
        assert!(shown.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn expression_shape_is_fully_hashed() {
        let base = |e: Expr| {
            fp(&Plan::Filter {
                input: Box::new(scan("t")),
                predicate: e,
            })
        };
        let gt = base(Expr::col("x").gt(Expr::lit(1i64)));
        let lt = base(Expr::col("x").lt(Expr::lit(1i64)));
        let neg = base(Expr::Not(Box::new(Expr::col("x").gt(Expr::lit(1i64)))));
        let param = base(Expr::col("x").gt(Expr::typed_param(0, DataType::Int64)));
        let case = base(Expr::Case {
            branches: vec![(Expr::col("x").gt(Expr::lit(1i64)), Expr::lit(true))],
            else_expr: Box::new(Expr::lit(false)),
        });
        let all = [gt, lt, neg, param, case];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j, "fingerprints {i} and {j} collided");
            }
        }
    }
}
