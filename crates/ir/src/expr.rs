//! Scalar expressions: predicates, projections, and inlined models.

use crate::error::IrError;
use crate::Result;
use raven_data::{DataType, Schema, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Multiply,
    Divide,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// True for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Multiply => "*",
            BinOp::Divide => "/",
        }
    }
}

/// Aggregate functions for `Aggregate` plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// A scalar expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (possibly qualified, e.g. `pi.age`).
    Column(String),
    /// Constant.
    Literal(Value),
    /// Positional prepared-statement placeholder (`?` in SQL, 0-based).
    ///
    /// `dtype` is `None` straight out of the parser; the binder infers it
    /// from the expression's context against the schema (a parameter
    /// compared with a `Float64` column becomes a `Float64` parameter).
    /// Parameters never constant-fold and never feed predicate-based
    /// model pruning — a cached template plan must stay correct for
    /// *every* future argument. [`Expr::bind_params`] substitutes real
    /// values at execution time.
    Parameter {
        index: usize,
        dtype: Option<DataType>,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 [WHEN ...] ELSE e END` — also the encoding of
    /// inlined decision trees (paper §4.2, model inlining).
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience: literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience: untyped positional parameter (as parsed from `?`).
    pub fn param(index: usize) -> Expr {
        Expr::Parameter { index, dtype: None }
    }

    /// Convenience: parameter with an inferred type.
    pub fn typed_param(index: usize, dtype: DataType) -> Expr {
        Expr::Parameter {
            index,
            dtype: Some(dtype),
        }
    }

    /// Convenience: binary node.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::GtEq, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::LtEq, self, other)
    }

    /// Collect all referenced column names (in first-appearance order,
    /// deduplicated).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Pre-order visitor.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Parameter { .. } => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(inner) => inner.visit(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit(f);
                    v.visit(f);
                }
                else_expr.visit(f);
            }
        }
    }

    /// Rewrite bottom-up: children first, then the node itself.
    pub fn transform(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Not(inner) => Expr::Not(Box::new(inner.transform(f))),
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (c.transform(f), v.transform(f)))
                    .collect(),
                else_expr: Box::new(else_expr.transform(f)),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Infer the result type against a schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(schema.field(idx)?.dtype)
            }
            Expr::Literal(v) => Ok(v.data_type()),
            Expr::Parameter { index, dtype } => dtype.ok_or_else(|| {
                IrError::TypeError(format!(
                    "parameter ?{} has no inferred type; bind the query first",
                    index + 1
                ))
            }),
            Expr::Binary { op, left, right } => {
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                if op.is_comparison() || op.is_logical() {
                    Ok(DataType::Bool)
                } else {
                    // Arithmetic: Float64 unless both sides are Int64.
                    match (lt, rt) {
                        (DataType::Int64, DataType::Int64) => Ok(DataType::Int64),
                        (a, b) if a.is_numeric() && b.is_numeric() => Ok(DataType::Float64),
                        _ => Err(IrError::TypeError(format!("arithmetic over {lt} and {rt}"))),
                    }
                }
            }
            Expr::Not(inner) => {
                let t = inner.data_type(schema)?;
                if t == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(IrError::TypeError(format!("NOT over {t}")))
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                let t = else_expr.data_type(schema)?;
                for (cond, value) in branches {
                    if cond.data_type(schema)? != DataType::Bool {
                        return Err(IrError::TypeError("CASE condition must be Bool".into()));
                    }
                    let vt = value.data_type(schema)?;
                    if vt != t && !(vt.is_numeric() && t.is_numeric()) {
                        return Err(IrError::TypeError(format!(
                            "CASE branches disagree: {vt} vs {t}"
                        )));
                    }
                }
                Ok(t)
            }
        }
    }

    /// All parameter indices referenced by this expression (sorted,
    /// deduplicated).
    pub fn parameter_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Parameter { index, .. } = e {
                if !out.contains(index) {
                    out.push(*index);
                }
            }
        });
        out.sort_unstable();
        out
    }

    /// Check `params` against this expression's placeholders without
    /// rewriting anything: every referenced index must have a value, and
    /// each value must be compatible with the parameter's inferred type.
    /// Numeric values are interchangeable across numeric parameters —
    /// `pregnant > 0.5` over an `Int64` column must behave exactly like
    /// the literal query, so a `Float64` argument in an `Int64`-typed
    /// slot is accepted (and substituted unchanged, never truncated).
    /// Any other mismatch (and any missing argument) is a
    /// [`IrError::TypeError`].
    pub fn validate_params(&self, params: &[Value]) -> Result<()> {
        let mut problem: Option<IrError> = None;
        self.visit(&mut |e| {
            if let Expr::Parameter { index, dtype } = e {
                if problem.is_some() {
                    return;
                }
                let Some(value) = params.get(*index) else {
                    problem = Some(IrError::TypeError(format!(
                        "no value for parameter ?{}: statement got {} parameter(s)",
                        index + 1,
                        params.len()
                    )));
                    return;
                };
                if let Some(expected) = dtype {
                    let actual = value.data_type();
                    let numeric_ok = expected.is_numeric() && actual.is_numeric();
                    if actual != *expected && !numeric_ok {
                        problem = Some(IrError::TypeError(format!(
                            "parameter ?{} expects {expected}, got {actual} ({value})",
                            index + 1
                        )));
                    }
                }
            }
        });
        match problem {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Substitute positional parameters with concrete values, validating
    /// first via [`Expr::validate_params`]. `Int64` arguments widen to
    /// `Float64` parameters; `Float64` arguments in `Int64` slots pass
    /// through unchanged (matching the literal query's expression).
    pub fn bind_params(self, params: &[Value]) -> Result<Expr> {
        self.validate_params(params)?;
        Ok(self.substitute_params(params))
    }

    /// The rewrite half of [`Expr::bind_params`]; callers must have run
    /// [`Expr::validate_params`] (indexing panics otherwise).
    pub(crate) fn substitute_params(self, params: &[Value]) -> Expr {
        self.transform(&|e| match e {
            Expr::Parameter { index, dtype } => {
                let value = params[index].clone();
                let value = match (dtype, &value) {
                    (Some(DataType::Float64), Value::Int64(v)) => Value::Float64(*v as f64),
                    _ => value,
                };
                Expr::Literal(value)
            }
            other => other,
        })
    }

    /// Fold constant subexpressions (numeric arithmetic, comparisons on
    /// literals, boolean simplification). Mirrors the paper's
    /// "standard DB optimizations".
    pub fn fold_constants(self) -> Expr {
        self.transform(&|e| match e {
            Expr::Binary { op, left, right } => {
                match (op, left.as_ref(), right.as_ref()) {
                    // Literal ∘ Literal.
                    (_, Expr::Literal(a), Expr::Literal(b)) => {
                        fold_literals(op, a, b).unwrap_or(Expr::Binary { op, left, right })
                    }
                    // Boolean identities.
                    (BinOp::And, Expr::Literal(Value::Bool(true)), _) => *right,
                    (BinOp::And, _, Expr::Literal(Value::Bool(true))) => *left,
                    (BinOp::And, Expr::Literal(Value::Bool(false)), _)
                    | (BinOp::And, _, Expr::Literal(Value::Bool(false))) => Expr::lit(false),
                    (BinOp::Or, Expr::Literal(Value::Bool(false)), _) => *right,
                    (BinOp::Or, _, Expr::Literal(Value::Bool(false))) => *left,
                    (BinOp::Or, Expr::Literal(Value::Bool(true)), _)
                    | (BinOp::Or, _, Expr::Literal(Value::Bool(true))) => Expr::lit(true),
                    _ => Expr::Binary { op, left, right },
                }
            }
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Literal(Value::Bool(b)) => Expr::lit(!*b),
                _ => Expr::Not(inner),
            },
            other => other,
        })
    }
}

fn fold_literals(op: BinOp, a: &Value, b: &Value) -> Option<Expr> {
    use std::cmp::Ordering;
    if op.is_comparison() {
        let ord = a.partial_cmp_value(b)?;
        let result = match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::NotEq => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::LtEq => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        };
        return Some(Expr::lit(result));
    }
    if op.is_logical() {
        let (a, b) = (a.as_bool().ok()?, b.as_bool().ok()?);
        return Some(Expr::lit(match op {
            BinOp::And => a && b,
            BinOp::Or => a || b,
            _ => unreachable!(),
        }));
    }
    // Arithmetic.
    if let (Value::Int64(x), Value::Int64(y)) = (a, b) {
        let v = match op {
            BinOp::Plus => x.checked_add(*y)?,
            BinOp::Minus => x.checked_sub(*y)?,
            BinOp::Multiply => x.checked_mul(*y)?,
            BinOp::Divide => {
                if *y == 0 {
                    return None;
                }
                x.checked_div(*y)?
            }
            _ => unreachable!(),
        };
        return Some(Expr::lit(v));
    }
    let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
    let v = match op {
        BinOp::Plus => x + y,
        BinOp::Minus => x - y,
        BinOp::Multiply => x * y,
        BinOp::Divide => x / y,
        _ => unreachable!(),
    };
    Some(Expr::lit(v))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => write!(f, "{v}"),
            // Positional placeholders render as SQL's `?`; expressions
            // print in evaluation order, so re-parsing the rendered text
            // assigns the same indices.
            Expr::Parameter { .. } => f.write_str("?"),
            Expr::Binary { op, left, right } => {
                let needs_parens = |e: &Expr| matches!(e, Expr::Binary { op: inner, .. } if inner.is_logical() && !op.is_logical());
                let _ = needs_parens;
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::Not(inner) => write!(f, "NOT ({inner})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {else_expr} END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let e = Expr::col("pregnant")
            .eq(Expr::lit(1i64))
            .and(Expr::col("length_of_stay").gt(Expr::lit(7i64)));
        assert_eq!(e.to_string(), "((pregnant = 1) AND (length_of_stay > 7))");
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::col("a")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn type_inference() {
        let schema = Schema::from_pairs(&[
            ("age", DataType::Float64),
            ("id", DataType::Int64),
            ("name", DataType::Utf8),
            ("flag", DataType::Bool),
        ]);
        assert_eq!(
            Expr::col("age")
                .gt(Expr::lit(1i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::binary(BinOp::Plus, Expr::col("id"), Expr::lit(1i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Int64
        );
        assert_eq!(
            Expr::binary(BinOp::Plus, Expr::col("age"), Expr::col("id"))
                .data_type(&schema)
                .unwrap(),
            DataType::Float64
        );
        assert!(
            Expr::binary(BinOp::Plus, Expr::col("name"), Expr::lit(1i64))
                .data_type(&schema)
                .is_err()
        );
        assert!(Expr::Not(Box::new(Expr::col("age")))
            .data_type(&schema)
            .is_err());
        assert!(Expr::col("missing").data_type(&schema).is_err());
    }

    #[test]
    fn case_typing() {
        let schema = Schema::from_pairs(&[("flag", DataType::Bool)]);
        let ok = Expr::Case {
            branches: vec![(Expr::col("flag"), Expr::lit(1i64))],
            else_expr: Box::new(Expr::lit(2.0f64)),
        };
        assert_eq!(ok.data_type(&schema).unwrap(), DataType::Float64);
        let bad_cond = Expr::Case {
            branches: vec![(Expr::lit(1i64), Expr::lit(1i64))],
            else_expr: Box::new(Expr::lit(2i64)),
        };
        assert!(bad_cond.data_type(&schema).is_err());
        let bad_branches = Expr::Case {
            branches: vec![(Expr::col("flag"), Expr::lit("s"))],
            else_expr: Box::new(Expr::lit(1i64)),
        };
        assert!(bad_branches.data_type(&schema).is_err());
    }

    #[test]
    fn constant_folding_arithmetic() {
        let e = Expr::binary(BinOp::Plus, Expr::lit(2i64), Expr::lit(3i64)).fold_constants();
        assert_eq!(e, Expr::lit(5i64));
        let e = Expr::binary(BinOp::Multiply, Expr::lit(2.0f64), Expr::lit(4i64)).fold_constants();
        assert_eq!(e, Expr::lit(8.0f64));
        // Division by integer zero stays unfolded.
        let e = Expr::binary(BinOp::Divide, Expr::lit(1i64), Expr::lit(0i64)).fold_constants();
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn constant_folding_boolean() {
        let e = Expr::lit(true).and(Expr::col("x").gt(Expr::lit(1i64)));
        assert_eq!(e.fold_constants().to_string(), "(x > 1)");
        let e = Expr::lit(false).and(Expr::col("x").gt(Expr::lit(1i64)));
        assert_eq!(e.fold_constants(), Expr::lit(false));
        let e = Expr::col("x").gt(Expr::lit(1i64)).or(Expr::lit(true));
        assert_eq!(e.fold_constants(), Expr::lit(true));
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(false))).fold_constants(),
            Expr::lit(true)
        );
    }

    #[test]
    fn constant_folding_comparisons() {
        assert_eq!(
            Expr::lit(3i64).gt(Expr::lit(2i64)).fold_constants(),
            Expr::lit(true)
        );
        assert_eq!(
            Expr::lit("a").eq(Expr::lit("b")).fold_constants(),
            Expr::lit(false)
        );
        // Mixed string/number comparison cannot fold.
        assert!(matches!(
            Expr::lit("a").eq(Expr::lit(1i64)).fold_constants(),
            Expr::Binary { .. }
        ));
    }

    #[test]
    fn transform_rewrites_leaves() {
        let e = Expr::col("a").gt(Expr::lit(1i64));
        let renamed = e.transform(&|x| match x {
            Expr::Column(c) if c == "a" => Expr::col("b"),
            other => other,
        });
        assert_eq!(renamed.referenced_columns(), vec!["b"]);
    }

    #[test]
    fn parameter_typing_and_display() {
        let schema = Schema::from_pairs(&[("age", DataType::Float64)]);
        // Untyped parameters cannot be typed against a schema.
        assert!(Expr::col("age")
            .gt(Expr::param(0))
            .data_type(&schema)
            .is_err());
        // Typed ones participate like literals.
        let e = Expr::col("age").gt(Expr::typed_param(0, DataType::Float64));
        assert_eq!(e.data_type(&schema).unwrap(), DataType::Bool);
        assert_eq!(e.to_string(), "(age > ?)");
        assert_eq!(e.parameter_indices(), vec![0]);
        // Parameters never constant-fold.
        let folded = Expr::typed_param(0, DataType::Int64)
            .gt(Expr::lit(1i64))
            .fold_constants();
        assert!(matches!(folded, Expr::Binary { .. }));
    }

    #[test]
    fn bind_params_substitutes_and_widens() {
        let e = Expr::col("age").gt(Expr::typed_param(0, DataType::Float64));
        let bound = e.bind_params(&[Value::Int64(30)]).unwrap();
        // Int64 argument widened to the parameter's Float64 type.
        assert_eq!(bound, Expr::col("age").gt(Expr::lit(30.0f64)));
    }

    #[test]
    fn bind_params_numeric_values_are_interchangeable() {
        // `pregnant > 0.5` over an Int64 column: the binder types the
        // parameter Int64 (from the column), but the extracted constant
        // is Float64 — it must substitute unchanged (never truncated),
        // exactly as the literal query would have evaluated.
        let e = Expr::col("pregnant").gt(Expr::typed_param(0, DataType::Int64));
        let bound = e.bind_params(&[Value::Float64(0.5)]).unwrap();
        assert_eq!(bound, Expr::col("pregnant").gt(Expr::lit(0.5f64)));
    }

    #[test]
    fn bind_params_arity_and_type_errors() {
        let e = Expr::col("age").gt(Expr::typed_param(0, DataType::Float64));
        // Wrong arity.
        let err = e.clone().bind_params(&[]).unwrap_err();
        assert!(
            err.to_string().contains("no value for parameter ?1"),
            "{err}"
        );
        // Type mismatch: a string where a float is expected.
        let err = e.bind_params(&[Value::Utf8("x".into())]).unwrap_err();
        assert!(err.to_string().contains("expects Float64"), "{err}");
        // Utf8 parameter accepts only strings.
        let e = Expr::col("dest").eq(Expr::typed_param(0, DataType::Utf8));
        assert!(e.clone().bind_params(&[Value::Int64(1)]).is_err());
        assert!(e.bind_params(&[Value::Utf8("JFK".into())]).is_ok());
    }

    #[test]
    fn case_display() {
        let e = Expr::Case {
            branches: vec![(Expr::col("bp").lt_eq(Expr::lit(140i64)), Expr::lit(4i64))],
            else_expr: Box::new(Expr::lit(7i64)),
        };
        assert_eq!(e.to_string(), "CASE WHEN (bp <= 140) THEN 4 ELSE 7 END");
    }
}
