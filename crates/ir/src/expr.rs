//! Scalar expressions: predicates, projections, and inlined models.

use crate::error::IrError;
use crate::Result;
use raven_data::{DataType, Schema, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Multiply,
    Divide,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// True for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Multiply => "*",
            BinOp::Divide => "/",
        }
    }
}

/// Aggregate functions for `Aggregate` plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// A scalar expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (possibly qualified, e.g. `pi.age`).
    Column(String),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 [WHEN ...] ELSE e END` — also the encoding of
    /// inlined decision trees (paper §4.2, model inlining).
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience: literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience: binary node.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::GtEq, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::LtEq, self, other)
    }

    /// Collect all referenced column names (in first-appearance order,
    /// deduplicated).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Pre-order visitor.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(inner) => inner.visit(f),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit(f);
                    v.visit(f);
                }
                else_expr.visit(f);
            }
        }
    }

    /// Rewrite bottom-up: children first, then the node itself.
    pub fn transform(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Not(inner) => Expr::Not(Box::new(inner.transform(f))),
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (c.transform(f), v.transform(f)))
                    .collect(),
                else_expr: Box::new(else_expr.transform(f)),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Infer the result type against a schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(schema.field(idx)?.dtype)
            }
            Expr::Literal(v) => Ok(v.data_type()),
            Expr::Binary { op, left, right } => {
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                if op.is_comparison() || op.is_logical() {
                    Ok(DataType::Bool)
                } else {
                    // Arithmetic: Float64 unless both sides are Int64.
                    match (lt, rt) {
                        (DataType::Int64, DataType::Int64) => Ok(DataType::Int64),
                        (a, b) if a.is_numeric() && b.is_numeric() => Ok(DataType::Float64),
                        _ => Err(IrError::TypeError(format!("arithmetic over {lt} and {rt}"))),
                    }
                }
            }
            Expr::Not(inner) => {
                let t = inner.data_type(schema)?;
                if t == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(IrError::TypeError(format!("NOT over {t}")))
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                let t = else_expr.data_type(schema)?;
                for (cond, value) in branches {
                    if cond.data_type(schema)? != DataType::Bool {
                        return Err(IrError::TypeError("CASE condition must be Bool".into()));
                    }
                    let vt = value.data_type(schema)?;
                    if vt != t && !(vt.is_numeric() && t.is_numeric()) {
                        return Err(IrError::TypeError(format!(
                            "CASE branches disagree: {vt} vs {t}"
                        )));
                    }
                }
                Ok(t)
            }
        }
    }

    /// Fold constant subexpressions (numeric arithmetic, comparisons on
    /// literals, boolean simplification). Mirrors the paper's
    /// "standard DB optimizations".
    pub fn fold_constants(self) -> Expr {
        self.transform(&|e| match e {
            Expr::Binary { op, left, right } => {
                match (op, left.as_ref(), right.as_ref()) {
                    // Literal ∘ Literal.
                    (_, Expr::Literal(a), Expr::Literal(b)) => {
                        fold_literals(op, a, b).unwrap_or(Expr::Binary { op, left, right })
                    }
                    // Boolean identities.
                    (BinOp::And, Expr::Literal(Value::Bool(true)), _) => *right,
                    (BinOp::And, _, Expr::Literal(Value::Bool(true))) => *left,
                    (BinOp::And, Expr::Literal(Value::Bool(false)), _)
                    | (BinOp::And, _, Expr::Literal(Value::Bool(false))) => Expr::lit(false),
                    (BinOp::Or, Expr::Literal(Value::Bool(false)), _) => *right,
                    (BinOp::Or, _, Expr::Literal(Value::Bool(false))) => *left,
                    (BinOp::Or, Expr::Literal(Value::Bool(true)), _)
                    | (BinOp::Or, _, Expr::Literal(Value::Bool(true))) => Expr::lit(true),
                    _ => Expr::Binary { op, left, right },
                }
            }
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Literal(Value::Bool(b)) => Expr::lit(!*b),
                _ => Expr::Not(inner),
            },
            other => other,
        })
    }
}

fn fold_literals(op: BinOp, a: &Value, b: &Value) -> Option<Expr> {
    use std::cmp::Ordering;
    if op.is_comparison() {
        let ord = a.partial_cmp_value(b)?;
        let result = match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::NotEq => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::LtEq => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        };
        return Some(Expr::lit(result));
    }
    if op.is_logical() {
        let (a, b) = (a.as_bool().ok()?, b.as_bool().ok()?);
        return Some(Expr::lit(match op {
            BinOp::And => a && b,
            BinOp::Or => a || b,
            _ => unreachable!(),
        }));
    }
    // Arithmetic.
    if let (Value::Int64(x), Value::Int64(y)) = (a, b) {
        let v = match op {
            BinOp::Plus => x.checked_add(*y)?,
            BinOp::Minus => x.checked_sub(*y)?,
            BinOp::Multiply => x.checked_mul(*y)?,
            BinOp::Divide => {
                if *y == 0 {
                    return None;
                }
                x.checked_div(*y)?
            }
            _ => unreachable!(),
        };
        return Some(Expr::lit(v));
    }
    let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
    let v = match op {
        BinOp::Plus => x + y,
        BinOp::Minus => x - y,
        BinOp::Multiply => x * y,
        BinOp::Divide => x / y,
        _ => unreachable!(),
    };
    Some(Expr::lit(v))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                let needs_parens = |e: &Expr| matches!(e, Expr::Binary { op: inner, .. } if inner.is_logical() && !op.is_logical());
                let _ = needs_parens;
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::Not(inner) => write!(f, "NOT ({inner})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {else_expr} END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let e = Expr::col("pregnant")
            .eq(Expr::lit(1i64))
            .and(Expr::col("length_of_stay").gt(Expr::lit(7i64)));
        assert_eq!(e.to_string(), "((pregnant = 1) AND (length_of_stay > 7))");
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::col("a")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn type_inference() {
        let schema = Schema::from_pairs(&[
            ("age", DataType::Float64),
            ("id", DataType::Int64),
            ("name", DataType::Utf8),
            ("flag", DataType::Bool),
        ]);
        assert_eq!(
            Expr::col("age")
                .gt(Expr::lit(1i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::binary(BinOp::Plus, Expr::col("id"), Expr::lit(1i64))
                .data_type(&schema)
                .unwrap(),
            DataType::Int64
        );
        assert_eq!(
            Expr::binary(BinOp::Plus, Expr::col("age"), Expr::col("id"))
                .data_type(&schema)
                .unwrap(),
            DataType::Float64
        );
        assert!(
            Expr::binary(BinOp::Plus, Expr::col("name"), Expr::lit(1i64))
                .data_type(&schema)
                .is_err()
        );
        assert!(Expr::Not(Box::new(Expr::col("age")))
            .data_type(&schema)
            .is_err());
        assert!(Expr::col("missing").data_type(&schema).is_err());
    }

    #[test]
    fn case_typing() {
        let schema = Schema::from_pairs(&[("flag", DataType::Bool)]);
        let ok = Expr::Case {
            branches: vec![(Expr::col("flag"), Expr::lit(1i64))],
            else_expr: Box::new(Expr::lit(2.0f64)),
        };
        assert_eq!(ok.data_type(&schema).unwrap(), DataType::Float64);
        let bad_cond = Expr::Case {
            branches: vec![(Expr::lit(1i64), Expr::lit(1i64))],
            else_expr: Box::new(Expr::lit(2i64)),
        };
        assert!(bad_cond.data_type(&schema).is_err());
        let bad_branches = Expr::Case {
            branches: vec![(Expr::col("flag"), Expr::lit("s"))],
            else_expr: Box::new(Expr::lit(1i64)),
        };
        assert!(bad_branches.data_type(&schema).is_err());
    }

    #[test]
    fn constant_folding_arithmetic() {
        let e = Expr::binary(BinOp::Plus, Expr::lit(2i64), Expr::lit(3i64)).fold_constants();
        assert_eq!(e, Expr::lit(5i64));
        let e = Expr::binary(BinOp::Multiply, Expr::lit(2.0f64), Expr::lit(4i64)).fold_constants();
        assert_eq!(e, Expr::lit(8.0f64));
        // Division by integer zero stays unfolded.
        let e = Expr::binary(BinOp::Divide, Expr::lit(1i64), Expr::lit(0i64)).fold_constants();
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn constant_folding_boolean() {
        let e = Expr::lit(true).and(Expr::col("x").gt(Expr::lit(1i64)));
        assert_eq!(e.fold_constants().to_string(), "(x > 1)");
        let e = Expr::lit(false).and(Expr::col("x").gt(Expr::lit(1i64)));
        assert_eq!(e.fold_constants(), Expr::lit(false));
        let e = Expr::col("x").gt(Expr::lit(1i64)).or(Expr::lit(true));
        assert_eq!(e.fold_constants(), Expr::lit(true));
        assert_eq!(
            Expr::Not(Box::new(Expr::lit(false))).fold_constants(),
            Expr::lit(true)
        );
    }

    #[test]
    fn constant_folding_comparisons() {
        assert_eq!(
            Expr::lit(3i64).gt(Expr::lit(2i64)).fold_constants(),
            Expr::lit(true)
        );
        assert_eq!(
            Expr::lit("a").eq(Expr::lit("b")).fold_constants(),
            Expr::lit(false)
        );
        // Mixed string/number comparison cannot fold.
        assert!(matches!(
            Expr::lit("a").eq(Expr::lit(1i64)).fold_constants(),
            Expr::Binary { .. }
        ));
    }

    #[test]
    fn transform_rewrites_leaves() {
        let e = Expr::col("a").gt(Expr::lit(1i64));
        let renamed = e.transform(&|x| match x {
            Expr::Column(c) if c == "a" => Expr::col("b"),
            other => other,
        });
        assert_eq!(renamed.referenced_columns(), vec!["b"]);
    }

    #[test]
    fn case_display() {
        let e = Expr::Case {
            branches: vec![(Expr::col("bp").lt_eq(Expr::lit(140i64)), Expr::lit(4i64))],
            else_expr: Box::new(Expr::lit(7i64)),
        };
        assert_eq!(e.to_string(), "CASE WHEN (bp <= 140) THEN 4 ELSE 7 END");
    }
}
