//! Request-scoped span trees, head sampling, and the slow-query ring.
//!
//! A [`SpanRecorder`] is an `Option<Arc<..>>`: the disabled recorder is
//! `None`, so every span call on an unsampled request is a single branch
//! — no clock read, no allocation. When a request *is* sampled (1-in-N
//! head sampling decided by [`TraceSink::begin`]), spans record name,
//! offset-from-request-start, duration, and parent, building a tree that
//! [`TraceSink::finish`] freezes into an immutable [`Trace`].
//!
//! Retention: sampled traces land in a bounded ring; any trace whose
//! total latency crosses the slow-query threshold is *also* kept in a
//! separate slow ring so a burst of fast sampled traffic can never evict
//! the interesting requests. A slow request that was not head-sampled
//! still lands in the slow ring as a spanless record (tenant, query,
//! total) — detecting it costs one comparison against a total the server
//! already computed, preserving the zero-overhead contract.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed span inside a [`Trace`]. `parent` indexes into the
/// trace's span vector; `None` marks a root (request-level) stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub name: String,
    pub parent: Option<u32>,
    pub start_us: u64,
    pub duration_us: u64,
}

/// A frozen per-request span tree with enough context to read the
/// slow-query log without the server that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Global capture order — later seq means more recent.
    pub seq: u64,
    pub tenant: String,
    /// The query text (or `score:<model>` for point lookups), truncated
    /// to [`TRACE_SQL_CAP`] bytes.
    pub sql: String,
    pub total_us: u64,
    /// True when the request crossed the slow-query threshold.
    pub slow: bool,
    pub spans: Vec<Span>,
}

/// Queries longer than this are truncated in captured traces.
pub const TRACE_SQL_CAP: usize = 512;

impl Trace {
    /// Sum of root-level stage durations. The acceptance bar for the
    /// tracing plumbing: this should land within ~10% of `total_us` for
    /// a traced request, because the root stages tile the request.
    pub fn stage_total_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.duration_us)
            .sum()
    }

    /// Human-readable per-stage breakdown, children indented under
    /// parents, in start order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace #{} tenant={} total={:.3} ms{}  {}",
            self.seq,
            if self.tenant.is_empty() {
                "default"
            } else {
                &self.tenant
            },
            self.total_us as f64 / 1e3,
            if self.slow { " [slow]" } else { "" },
            self.sql,
        );
        // Depth-first in start order: spans were appended in open order,
        // so a simple depth lookup per span keeps rendering linear.
        let mut depth = vec![0usize; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                depth[i] = depth[p as usize] + 1;
            }
            let _ = writeln!(
                out,
                "  {:indent$}{:<24} {:>10.3} ms  (+{:.3} ms)",
                "",
                s.name,
                s.duration_us as f64 / 1e3,
                s.start_us as f64 / 1e3,
                indent = depth[i] * 2,
            );
        }
        out
    }
}

struct RecSpan {
    name: &'static str,
    label: Option<String>,
    parent: Option<u32>,
    start_us: u64,
    duration_us: u64,
}

struct RecState {
    spans: Vec<RecSpan>,
    /// Indices of currently open spans; new spans parent onto the most
    /// recently opened one. Spans recorded from other threads (batcher
    /// worker, scorer morsels) remove themselves by index, not by pop,
    /// so concurrent guards cannot corrupt the stack.
    open: Vec<u32>,
}

struct TraceInner {
    start: Instant,
    state: Mutex<RecState>,
}

/// A cheap-to-clone handle recording spans for one request. Threaded by
/// value/reference through the serving path the same way `CancelToken`
/// is: cloned into the executor, passed to the batcher, defaulted in the
/// `Scorer` trait.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl SpanRecorder {
    /// The no-op recorder: every method is a branch on `None`.
    #[inline]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder; normally minted by [`TraceSink::begin`].
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(TraceInner {
                start: Instant::now(),
                state: Mutex::new(RecState {
                    spans: Vec::with_capacity(16),
                    open: Vec::with_capacity(8),
                }),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it closes (and records its duration) when the
    /// returned guard drops. On a disabled recorder this is free.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.open_span(name, None)
    }

    /// Like [`span`](Self::span) but with a dynamic label (model name,
    /// operator detail). The closure only runs when the recorder is
    /// live, so the disabled path never allocates.
    #[inline]
    pub fn span_labeled(&self, name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard { slot: None };
        }
        self.open_span(name, Some(label()))
    }

    fn open_span(&self, name: &'static str, label: Option<String>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { slot: None };
        };
        let start_us = inner.start.elapsed().as_micros() as u64;
        let mut state = inner.state.lock().unwrap();
        let idx = state.spans.len() as u32;
        let parent = state.open.last().copied();
        state.spans.push(RecSpan {
            name,
            label,
            parent,
            start_us,
            duration_us: 0,
        });
        state.open.push(idx);
        SpanGuard {
            slot: Some((Arc::clone(inner), idx)),
        }
    }

    /// Record an already-measured span (e.g. batcher queue time measured
    /// on the worker thread). `started_at` is clamped to the request
    /// start if it predates the recorder.
    pub fn record(&self, name: &'static str, started_at: Instant, duration: Duration) {
        let Some(inner) = &self.inner else { return };
        let start_us = started_at
            .saturating_duration_since(inner.start)
            .as_micros() as u64;
        let mut state = inner.state.lock().unwrap();
        let parent = state.open.last().copied();
        state.spans.push(RecSpan {
            name,
            label: None,
            parent,
            start_us,
            duration_us: duration.as_micros() as u64,
        });
    }

    /// Freeze the recorded spans. Used by [`TraceSink::finish`]; public
    /// so tests can inspect a recorder directly.
    pub fn into_spans(self) -> Vec<Span> {
        let Some(inner) = self.inner else {
            return Vec::new();
        };
        let state = inner.state.lock().unwrap();
        state
            .spans
            .iter()
            .map(|s| Span {
                name: match &s.label {
                    Some(l) => format!("{}:{}", s.name, l),
                    None => s.name.to_string(),
                },
                parent: s.parent,
                start_us: s.start_us,
                duration_us: s.duration_us,
            })
            .collect()
    }
}

/// Closes its span on drop. Inert (all-`None`) when minted by a
/// disabled recorder.
pub struct SpanGuard {
    slot: Option<(Arc<TraceInner>, u32)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((inner, idx)) = self.slot.take() else {
            return;
        };
        let now_us = inner.start.elapsed().as_micros() as u64;
        let mut state = inner.state.lock().unwrap();
        let span = &mut state.spans[idx as usize];
        span.duration_us = now_us.saturating_sub(span.start_us);
        state.open.retain(|&i| i != idx);
    }
}

/// Tracing knobs. `sample_every == 0` disables tracing entirely
/// (including slow-query capture): `begin` is one branch per request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Head-sample one request in this many. 1 traces everything.
    pub sample_every: u32,
    /// Requests at or above this total latency are always kept in the
    /// slow ring (with spans when sampled, spanless otherwise).
    pub slow_threshold: Duration,
    /// Capacity of each ring (sampled and slow).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample_every: 64,
            slow_threshold: Duration::from_millis(100),
            ring_capacity: 128,
        }
    }
}

/// Per-tenant trace retention: decides sampling at request head, and
/// files finished traces into bounded rings.
#[derive(Debug)]
pub struct TraceSink {
    config: TraceConfig,
    admitted: AtomicU64,
    /// Shared across tenants so `seq` totally orders captures
    /// server-wide; the aggregate view sorts on it.
    seq: Arc<AtomicU64>,
    ring: Mutex<VecDeque<Arc<Trace>>>,
    slow: Mutex<VecDeque<Arc<Trace>>>,
}

impl TraceSink {
    pub fn new(config: TraceConfig, seq: Arc<AtomicU64>) -> Self {
        Self {
            config,
            admitted: AtomicU64::new(0),
            seq,
            ring: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Head-sampling decision for one request. Disabled sink: a plain
    /// field compare. Enabled: one relaxed `fetch_add` plus a modulo.
    #[inline]
    pub fn begin(&self) -> SpanRecorder {
        if self.config.sample_every == 0 {
            return SpanRecorder::disabled();
        }
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.config.sample_every as u64) {
            SpanRecorder::enabled()
        } else {
            SpanRecorder::disabled()
        }
    }

    /// File the request's trace. Sampled traces enter the sampled ring;
    /// slow requests always enter the slow ring (spanless if the head
    /// sample passed them over). With tracing disabled this returns
    /// immediately.
    pub fn finish(&self, recorder: SpanRecorder, tenant: &str, sql: &str, total: Duration) {
        if self.config.sample_every == 0 {
            return;
        }
        let slow = total >= self.config.slow_threshold;
        if !recorder.is_enabled() && !slow {
            return;
        }
        let mut sql_cap = sql;
        if sql_cap.len() > TRACE_SQL_CAP {
            let mut end = TRACE_SQL_CAP;
            while !sql_cap.is_char_boundary(end) {
                end -= 1;
            }
            sql_cap = &sql_cap[..end];
        }
        let sampled = recorder.is_enabled();
        let trace = Arc::new(Trace {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            tenant: tenant.to_string(),
            sql: sql_cap.to_string(),
            total_us: total.as_micros() as u64,
            slow,
            spans: recorder.into_spans(),
        });
        if sampled {
            push_bounded(&self.ring, trace.clone(), self.config.ring_capacity);
        }
        if slow {
            push_bounded(&self.slow, trace, self.config.ring_capacity);
        }
    }

    /// Most recent sampled traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<Trace>> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .rev()
            .take(n)
            .cloned()
            .collect()
    }

    /// Most recent slow traces, newest first.
    pub fn recent_slow(&self, n: usize) -> Vec<Arc<Trace>> {
        self.slow
            .lock()
            .unwrap()
            .iter()
            .rev()
            .take(n)
            .cloned()
            .collect()
    }
}

fn push_bounded(ring: &Mutex<VecDeque<Arc<Trace>>>, trace: Arc<Trace>, cap: usize) {
    if cap == 0 {
        return;
    }
    let mut ring = ring.lock().unwrap();
    if ring.len() == cap {
        ring.pop_front();
    }
    ring.push_back(trace);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(sample_every: u32, slow_ms: u64, cap: usize) -> TraceSink {
        TraceSink::new(
            TraceConfig {
                sample_every,
                slow_threshold: Duration::from_millis(slow_ms),
                ring_capacity: cap,
            },
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        let _g = rec.span("normalize");
        rec.record("queue", Instant::now(), Duration::from_micros(5));
        assert!(rec.into_spans().is_empty());
    }

    #[test]
    fn spans_nest_under_the_open_parent() {
        let rec = SpanRecorder::enabled();
        {
            let _outer = rec.span("plan-cache-lookup");
            {
                let _inner = rec.span("parse-bind");
            }
            let _inner2 = rec.span("optimize");
        }
        let _root2 = rec.span("fingerprint");
        drop(_root2);
        let spans = rec.into_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["plan-cache-lookup", "parse-bind", "optimize", "fingerprint"]
        );
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[3].parent, None);
    }

    #[test]
    fn labels_attach_only_when_enabled() {
        let rec = SpanRecorder::enabled();
        drop(rec.span_labeled("scorer", || "duration_of_stay".to_string()));
        let spans = rec.into_spans();
        assert_eq!(spans[0].name, "scorer:duration_of_stay");

        let off = SpanRecorder::disabled();
        drop(off.span_labeled("scorer", || panic!("label closure must not run")));
    }

    #[test]
    fn head_sampling_keeps_one_in_n() {
        let sink = sink(4, 10_000, 64);
        let mut sampled = 0;
        for _ in 0..40 {
            let rec = sink.begin();
            if rec.is_enabled() {
                sampled += 1;
            }
            sink.finish(rec, "t", "SELECT 1", Duration::from_micros(10));
        }
        assert_eq!(sampled, 10);
        assert_eq!(sink.recent(64).len(), 10);
        assert!(sink.recent_slow(64).is_empty());
    }

    #[test]
    fn sample_rate_zero_disables_everything() {
        let sink = sink(0, 0, 64);
        let rec = sink.begin();
        assert!(!rec.is_enabled());
        sink.finish(rec, "t", "SELECT 1", Duration::from_secs(5));
        assert!(sink.recent(64).is_empty());
        assert!(sink.recent_slow(64).is_empty());
    }

    #[test]
    fn slow_requests_are_kept_even_when_unsampled() {
        let sink = sink(1_000_000, 1, 64); // effectively never head-sampled after the first
        let first = sink.begin(); // request 0 is sampled; discard it fast
        sink.finish(first, "t", "fast", Duration::from_micros(1));
        let rec = sink.begin();
        assert!(!rec.is_enabled());
        sink.finish(rec, "team-a", "SELECT slow", Duration::from_millis(50));
        let slow = sink.recent_slow(10);
        assert_eq!(slow.len(), 1);
        assert!(slow[0].slow);
        assert!(slow[0].spans.is_empty(), "unsampled slow trace is spanless");
        assert_eq!(slow[0].sql, "SELECT slow");
    }

    #[test]
    fn rings_are_bounded_and_newest_first() {
        let sink = sink(1, 0, 4); // everything sampled, everything slow
        for i in 0..10 {
            let rec = sink.begin();
            sink.finish(rec, "t", &format!("q{i}"), Duration::from_micros(i));
        }
        let recent = sink.recent(64);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].sql, "q9");
        assert_eq!(recent[3].sql, "q6");
        assert_eq!(sink.recent_slow(2).len(), 2);
    }

    #[test]
    fn stage_totals_sum_root_spans_only() {
        let rec = SpanRecorder::enabled();
        {
            let _a = rec.span("result-cache-lookup");
            std::thread::sleep(Duration::from_millis(2));
            let _child = rec.span("op:Scan");
        }
        let spans = rec.into_spans();
        let trace = Trace {
            seq: 0,
            tenant: String::new(),
            sql: String::new(),
            total_us: spans.iter().map(|s| s.duration_us).max().unwrap_or(0),
            slow: false,
            spans,
        };
        // Only the root contributes; the nested operator span does not
        // double-count.
        assert_eq!(
            trace.stage_total_us(),
            trace.spans[0].duration_us,
            "{trace:?}"
        );
        assert!(trace.render().contains("result-cache-lookup"));
    }

    #[test]
    fn long_sql_is_truncated_at_a_char_boundary() {
        let sink = sink(1, 10_000, 4);
        let rec = sink.begin();
        let sql = "é".repeat(TRACE_SQL_CAP); // 2 bytes each
        sink.finish(rec, "t", &sql, Duration::from_micros(1));
        let kept = sink.recent(1);
        assert!(kept[0].sql.len() <= TRACE_SQL_CAP);
        assert!(kept[0].sql.chars().all(|c| c == 'é'));
    }
}
