//! Observability primitives for the Raven serving path.
//!
//! Two halves, both dependency-free and cheap enough to live on the hot
//! path:
//!
//! * [`metrics`] — counters, gauges, and fixed-bucket log2 histograms
//!   behind a [`MetricsRegistry`]. Handles are plain `Arc`s over atomics:
//!   registration takes a lock once, recording never does. Snapshots
//!   ([`RegistrySnapshot`]) merge associatively and commutatively, so
//!   per-tenant metrics sum into an exact cross-tenant aggregate the same
//!   way `LatencySummary::from_samples` keeps percentiles exact over
//!   merged sample windows.
//! * [`trace`] — a per-request span tree ([`SpanRecorder`]) with head
//!   sampling and a bounded ring of kept traces ([`TraceSink`]). A
//!   disabled recorder is a `None` — no allocation, no clock reads — so
//!   `trace_sample_rate: 0` costs one branch per request.
//!
//! The server threads a [`SpanRecorder`] through the serving path exactly
//! the way `CancelToken` is threaded through `raven-relational`: an owned
//! field plus a `with_*` builder on the executor, and a defaulted trait
//! hook on `Scorer` so existing implementations keep compiling.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
    HISTOGRAM_BUCKETS,
};
pub use trace::{Span, SpanGuard, SpanRecorder, Trace, TraceConfig, TraceSink};
