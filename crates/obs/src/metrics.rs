//! A lock-cheap metrics registry: counters, gauges, and log2 histograms.
//!
//! Recording is wait-free (relaxed atomics); the registry lock is only
//! taken to hand out handles and to snapshot. Subsystems that keep their
//! own atomic counters (plan cache, result cache, admission) contribute
//! to the same surface by writing into a [`RegistrySnapshot`] at
//! snapshot time, so one merge/render path covers everything.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket 0 counts values `{0, 1}`; bucket
/// `i` (for `i >= 1`) counts values in `[2^i, 2^(i+1))`. 64 buckets cover
/// the full `u64` range, so `observe` never saturates into an overflow
/// bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge storing an `f64` as its bit pattern in an
/// `AtomicU64`, with a CAS-loop EWMA update for cost tracking. This is
/// the home for what used to be the micro-batcher's hand-rolled
/// `CostEstimator`: the first sample seeds the value directly, later
/// samples fold in with weight `alpha`.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Raise the gauge to `value` if it is higher than the current
    /// reading — a lock-free high-water mark (CAS fetch-max over the f64
    /// bits). Concurrent `set_max` calls from any number of threads
    /// converge on the true maximum.
    pub fn set_max(&self, value: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Fold `sample` into the gauge as an exponentially weighted moving
    /// average. A zero current value is treated as "unseeded": the first
    /// sample lands verbatim so the average does not have to climb out
    /// of an artificial zero.
    pub fn ewma(&self, sample: f64, alpha: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let new = if old == 0.0 {
                sample
            } else {
                alpha * sample + (1.0 - alpha) * old
            };
            match self.0.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A fixed-bucket base-2 histogram. Buckets are powers of two, so
/// `observe` is a couple of bit operations plus one relaxed increment,
/// and merging two histograms is a bucket-wise sum — associative and
/// commutative, which is what keeps cross-tenant aggregation exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize - 1
    }
}

/// Inclusive upper bound of bucket `i`, used as the `le` label when
/// rendering and as the value estimate for percentile queries.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a `Duration` in microseconds — the unit every latency
    /// histogram in the server uses.
    #[inline]
    pub fn observe_micros(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], safe to merge and ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise sum. Associative and commutative by construction:
    /// merging per-tenant snapshots in any order or grouping yields the
    /// identical aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-th quantile
    /// (`0.0 ..= 1.0`). Within a factor of two of the true value, which
    /// is the resolution a log2 histogram buys.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// A named family of metrics. Handles are `Arc`s over atomics obtained
/// once at construction time; recording through them never touches the
/// registry lock. Names are `&'static str` because every metric in the
/// engine is compile-time known — this keeps registration allocation-free
/// on the lookup side.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counters
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.gauges.lock().unwrap().entry(name).or_default().clone()
    }

    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .unwrap()
            .entry(name)
            .or_default()
            .clone()
    }

    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        for (name, c) in self.counters.lock().unwrap().iter() {
            snap.counters.insert((*name).to_string(), c.get());
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            snap.gauges.insert((*name).to_string(), g.get());
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            snap.histograms.insert((*name).to_string(), h.snapshot());
        }
        snap
    }
}

/// A mergeable, renderable copy of a registry (plus whatever extra
/// counters subsystems contribute at snapshot time).
///
/// Merge semantics: counters and histograms sum exactly; gauges sum as
/// well, which is the right reading for the gauges the server exports
/// (EWMA cost estimates are per-tenant rates — the aggregate reports
/// their total). Anything needing a distribution should be a histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Add or bump a counter contributed from outside the registry
    /// (subsystems with their own atomics: caches, admission).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    pub fn set_gauge(&mut self, name: &str, value: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) = value;
    }

    pub fn add_histogram(&mut self, name: &str, snap: &HistogramSnapshot) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(snap);
    }

    /// Fold `other` into `self`. Associative and commutative across all
    /// three metric kinds, so any merge order over per-tenant snapshots
    /// produces the same aggregate.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Prometheus-style text exposition. Every series is prefixed
    /// `raven_` and labeled with `tenant` unless the label is empty
    /// (the cross-tenant aggregate).
    pub fn render(&self, tenant: &str) -> String {
        let label = if tenant.is_empty() {
            String::new()
        } else {
            format!("{{tenant=\"{tenant}\"}}")
        };
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE raven_{name} counter");
            let _ = writeln!(out, "raven_{name}{label} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE raven_{name} gauge");
            let _ = writeln!(out, "raven_{name}{label} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE raven_{name} histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                if *b == 0 {
                    continue;
                }
                cumulative += b;
                let le = bucket_upper(i);
                let series = if tenant.is_empty() {
                    format!("raven_{name}_bucket{{le=\"{le}\"}}")
                } else {
                    format!("raven_{name}_bucket{{tenant=\"{tenant}\",le=\"{le}\"}}")
                };
                let _ = writeln!(out, "{series} {cumulative}");
            }
            let inf = if tenant.is_empty() {
                format!("raven_{name}_bucket{{le=\"+Inf\"}}")
            } else {
                format!("raven_{name}_bucket{{tenant=\"{tenant}\",le=\"+Inf\"}}")
            };
            let _ = writeln!(out, "{inf} {}", h.count);
            let _ = writeln!(out, "raven_{name}_sum{label} {}", h.sum);
            let _ = writeln!(out, "raven_{name}_count{label} {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's upper bound falls inside the bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_records_count_sum_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        // p50 lands in the bucket holding 3 (values [2,4)).
        assert_eq!(s.quantile(0.5), 3);
        // p100 lands in the bucket holding 1000 (values [512,1024)).
        assert_eq!(s.quantile(1.0), 1023);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..100u64 {
            whole.observe(v * 7);
            if v % 2 == 0 {
                a.observe(v * 7);
            } else {
                b.observe(v * 7);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn gauge_ewma_seeds_then_converges() {
        let g = Gauge::new();
        g.ewma(100.0, 0.2);
        assert_eq!(g.get(), 100.0); // first sample seeds
        for _ in 0..200 {
            g.ewma(10.0, 0.2);
        }
        assert!((g.get() - 10.0).abs() < 1.0, "ewma should track the shift");
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(4.0);
        assert_eq!(g.get(), 4.0);
        g.set_max(2.0); // lower readings never regress the mark
        assert_eq!(g.get(), 4.0);
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
        // Racing writers converge on the true maximum.
        let g = std::sync::Arc::new(Gauge::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        g.set_max((t * 1_000 + i) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 3_999.0);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("queries_total");
        let b = reg.counter("queries_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counters["queries_total"], 3);
    }

    #[test]
    fn snapshot_merge_sums_every_kind() {
        let mut a = RegistrySnapshot::default();
        a.add_counter("hits", 3);
        a.set_gauge("cost", 1.5);
        let mut b = RegistrySnapshot::default();
        b.add_counter("hits", 4);
        b.add_counter("misses", 1);
        b.set_gauge("cost", 2.5);
        a.merge(&b);
        assert_eq!(a.counters["hits"], 7);
        assert_eq!(a.counters["misses"], 1);
        assert_eq!(a.gauges["cost"], 4.0);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        reg.counter("queries_total").add(5);
        reg.histogram("latency_us").observe(3);
        let text = reg.snapshot().render("team-a");
        assert!(text.contains("# TYPE raven_queries_total counter"));
        assert!(text.contains("raven_queries_total{tenant=\"team-a\"} 5"));
        assert!(text.contains("raven_latency_us_bucket{tenant=\"team-a\",le=\"3\"} 1"));
        assert!(text.contains("raven_latency_us_count{tenant=\"team-a\"} 1"));
        // The aggregate renders without a tenant label.
        let agg = reg.snapshot().render("");
        assert!(agg.contains("raven_queries_total 5"));
    }
}
