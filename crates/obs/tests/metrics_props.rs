//! Property tests for the algebra the cross-tenant aggregation leans
//! on: histogram merge is associative and commutative, and per-tenant
//! registry snapshots absorbed into an aggregate reconcile *exactly* —
//! any merge order, any grouping, any partition of the observations.

use proptest::collection::vec;
use proptest::prelude::*;
use raven_obs::{Histogram, HistogramSnapshot, RegistrySnapshot};

/// Observation values spanning several buckets, small enough that no
/// sum of a whole test case can overflow `u64`.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![0..8u64, 8..1024u64, 1024..1_000_000u64, Just(1u64 << 40),],
        0..64,
    )
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

/// Metric names drawn from a small pool so different tenants collide on
/// some names (the interesting case for merge) and miss on others.
const NAMES: [&str; 4] = ["queries_total", "rows_total", "errors_total", "latency_us"];

/// One tenant's worth of snapshot content. Gauge values are integers
/// (exact in `f64`), so summing them in any order or grouping is exact
/// and the associativity assertions below hold bit-for-bit.
fn tenant_snapshot() -> impl Strategy<Value = RegistrySnapshot> {
    (
        vec((0..NAMES.len(), 0..1_000_000u64), 0..8),
        vec((0..NAMES.len(), -1000..1000i32), 0..8),
        vec((0..NAMES.len(), observations()), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| {
            let mut snap = RegistrySnapshot::default();
            for (i, v) in counters {
                snap.add_counter(NAMES[i], v);
            }
            for (i, v) in gauges {
                let name = NAMES[i];
                let current = snap.gauges.get(name).copied().unwrap_or(0.0);
                snap.set_gauge(name, current + v as f64);
            }
            for (i, values) in histograms {
                snap.add_histogram(NAMES[i], &snapshot_of(&values));
            }
            snap
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_is_commutative(a in observations(), b in observations()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in observations(),
        b in observations(),
        c in observations(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn partitioned_observations_reconcile_exactly(
        values in observations(),
        parts in 1..5usize,
    ) {
        // Observing a stream whole, or sharded across `parts` histograms
        // (one per tenant) and merging the shards, must be the same
        // distribution — count, sum, every bucket, every quantile.
        let whole = snapshot_of(&values);
        let shards: Vec<Vec<u64>> = (0..parts)
            .map(|p| {
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % parts == p)
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect();
        let mut merged = HistogramSnapshot::default();
        for shard in &shards {
            merged.merge(&snapshot_of(shard));
        }
        prop_assert_eq!(merged, whole);
        for q in [0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn tenant_snapshots_absorb_into_aggregate_exactly(
        tenants in vec(tenant_snapshot(), 0..6),
    ) {
        // Merge order must not matter: folding the per-tenant snapshots
        // forward or in reverse yields the identical aggregate.
        let mut forward = RegistrySnapshot::default();
        for t in &tenants {
            forward.merge(t);
        }
        let mut reverse = RegistrySnapshot::default();
        for t in tenants.iter().rev() {
            reverse.merge(t);
        }
        prop_assert_eq!(&forward, &reverse);

        // And the aggregate must be an exact reconciliation: each
        // counter is the sum over tenants, each histogram's count/sum
        // are the sums over tenants — nothing sampled, nothing lost.
        for name in NAMES {
            let counter_sum: u64 = tenants
                .iter()
                .filter_map(|t| t.counters.get(name))
                .sum();
            prop_assert_eq!(
                forward.counters.get(name).copied().unwrap_or(0),
                counter_sum
            );
            let (count_sum, value_sum) = tenants
                .iter()
                .filter_map(|t| t.histograms.get(name))
                .fold((0u64, 0u64), |(c, s), h| (c + h.count, s + h.sum));
            let agg = forward.histograms.get(name).copied().unwrap_or_default();
            prop_assert_eq!(agg.count, count_sum);
            prop_assert_eq!(agg.sum, value_sum);
        }
    }
}
