//! Columnar expression evaluation.

use crate::error::ExecError;
use crate::Result;
use raven_data::{Column, DataType, RecordBatch, Value};
use raven_ir::{BinOp, Expr};
use std::cmp::Ordering;

/// Evaluate an expression over a batch, producing one column.
pub fn evaluate(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    match eval_inner(expr, batch)? {
        Ev::Column(c) => Ok(c),
        Ev::Scalar(v) => Ok(scalar_column(&v, batch.num_rows())),
    }
}

/// Evaluate a boolean predicate into a selection mask.
pub fn evaluate_predicate(expr: &Expr, batch: &RecordBatch) -> Result<Vec<bool>> {
    match eval_inner(expr, batch)? {
        Ev::Column(Column::Bool(mask)) => Ok(mask),
        Ev::Scalar(Value::Bool(b)) => Ok(vec![b; batch.num_rows()]),
        other => Err(ExecError::Eval(format!(
            "predicate evaluated to non-boolean {:?}",
            other.data_type()
        ))),
    }
}

/// Lazy evaluation result: literals stay scalar until forced, so
/// `bp > 140` over a million rows never materializes a constant column.
enum Ev {
    Column(Column),
    Scalar(Value),
}

impl Ev {
    fn data_type(&self) -> DataType {
        match self {
            Ev::Column(c) => c.data_type(),
            Ev::Scalar(v) => v.data_type(),
        }
    }
}

fn scalar_column(v: &Value, rows: usize) -> Column {
    match v {
        Value::Int64(x) => Column::Int64(vec![*x; rows]),
        Value::Float64(x) => Column::Float64(vec![*x; rows]),
        Value::Bool(x) => Column::Bool(vec![*x; rows]),
        Value::Utf8(s) => Column::Utf8(vec![s.clone(); rows]),
    }
}

fn eval_inner(expr: &Expr, batch: &RecordBatch) -> Result<Ev> {
    match expr {
        Expr::Column(name) => Ok(Ev::Column(batch.column_by_name(name)?.clone())),
        Expr::Literal(v) => Ok(Ev::Scalar(v.clone())),
        // Template plans must be bound (`Plan::bind_parameters`) before
        // execution; reaching the evaluator with a placeholder is a bug
        // in the caller, reported rather than panicked.
        Expr::Parameter { index, .. } => Err(ExecError::Eval(format!(
            "unbound parameter ?{}: execute the plan with parameter values",
            index + 1
        ))),
        Expr::Binary { op, left, right } => {
            let l = eval_inner(left, batch)?;
            let r = eval_inner(right, batch)?;
            eval_binary(*op, l, r, batch.num_rows())
        }
        Expr::Not(inner) => match eval_inner(inner, batch)? {
            Ev::Column(Column::Bool(mut mask)) => {
                for b in &mut mask {
                    *b = !*b;
                }
                Ok(Ev::Column(Column::Bool(mask)))
            }
            Ev::Scalar(Value::Bool(b)) => Ok(Ev::Scalar(Value::Bool(!b))),
            other => Err(ExecError::Eval(format!("NOT over {:?}", other.data_type()))),
        },
        Expr::Case {
            branches,
            else_expr,
        } => eval_case(branches, else_expr, batch),
    }
}

/// CASE evaluation is *short-circuited per partition*: each branch's value
/// expression is evaluated only over the rows its condition claimed, then
/// results scatter back. Without this, a deeply nested CASE (an inlined
/// decision tree!) would evaluate every subtree for every row —
/// O(nodes × rows) instead of O(depth × rows).
fn eval_case(branches: &[(Expr, Expr)], else_expr: &Expr, batch: &RecordBatch) -> Result<Ev> {
    let rows = batch.num_rows();
    // Decide the branch per row (conditions still evaluate over all
    // undecided rows; for inlined trees there is exactly one condition).
    let mut chosen: Vec<usize> = vec![usize::MAX; rows]; // MAX = else
    for (bi, (cond, _)) in branches.iter().enumerate() {
        let mask = evaluate_predicate(cond, batch)?;
        for (r, &m) in mask.iter().enumerate() {
            if m && chosen[r] == usize::MAX {
                chosen[r] = bi;
            }
        }
    }
    // Partition rows by chosen branch.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); branches.len() + 1];
    for (r, &c) in chosen.iter().enumerate() {
        let slot = if c == usize::MAX { branches.len() } else { c };
        groups[slot].push(r);
    }
    // Narrow the batch to the columns each value expression needs before
    // `take`, so partitioning does not clone unrelated columns.
    let mut out_f64: Vec<f64> = vec![0.0; rows];
    let mut out_utf8: Option<Vec<String>> = None;
    let mut is_utf8 = false;
    for (slot, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let value_expr = if slot == branches.len() {
            else_expr
        } else {
            &branches[slot].1
        };
        let sub = project_and_take(batch, value_expr, group)?;
        let col = evaluate(value_expr, &sub)?;
        match col {
            Column::Utf8(vals) => {
                is_utf8 = true;
                let out = out_utf8.get_or_insert_with(|| vec![String::new(); rows]);
                for (&r, v) in group.iter().zip(vals) {
                    out[r] = v;
                }
            }
            other => {
                let vals = other.to_f64_vec()?;
                for (&r, v) in group.iter().zip(vals) {
                    out_f64[r] = v;
                }
            }
        }
    }
    if is_utf8 {
        Ok(Ev::Column(Column::Utf8(out_utf8.unwrap_or_default())))
    } else {
        Ok(Ev::Column(Column::Float64(out_f64)))
    }
}

/// Take `rows` from `batch`, restricted to the columns `expr` references.
fn project_and_take(batch: &RecordBatch, expr: &Expr, rows: &[usize]) -> Result<RecordBatch> {
    let needed = expr.referenced_columns();
    if needed.is_empty() {
        // Pure literal subtree: keep one column so the sub-batch carries
        // the row count (literals broadcast over it at evaluation).
        let first = batch.project(&[0])?;
        return Ok(first.take(rows)?);
    }
    let schema = batch.schema();
    let mut indices = Vec::with_capacity(needed.len());
    for name in needed {
        indices.push(schema.index_of(&name)?);
    }
    indices.sort_unstable();
    indices.dedup();
    Ok(batch.project(&indices)?.take(rows)?)
}

fn eval_binary(op: BinOp, l: Ev, r: Ev, rows: usize) -> Result<Ev> {
    if op.is_logical() {
        return eval_logical(op, l, r, rows);
    }
    if op.is_comparison() {
        return eval_comparison(op, l, r, rows);
    }
    eval_arithmetic(op, l, r, rows)
}

fn eval_logical(op: BinOp, l: Ev, r: Ev, rows: usize) -> Result<Ev> {
    let to_mask = |e: Ev| -> Result<Vec<bool>> {
        match e {
            Ev::Column(Column::Bool(m)) => Ok(m),
            Ev::Scalar(Value::Bool(b)) => Ok(vec![b; rows]),
            other => Err(ExecError::Eval(format!(
                "logical op over {:?}",
                other.data_type()
            ))),
        }
    };
    let (mut a, b) = (to_mask(l)?, to_mask(r)?);
    match op {
        BinOp::And => a.iter_mut().zip(&b).for_each(|(x, &y)| *x = *x && y),
        BinOp::Or => a.iter_mut().zip(&b).for_each(|(x, &y)| *x = *x || y),
        _ => unreachable!(),
    }
    Ok(Ev::Column(Column::Bool(a)))
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!(),
    }
}

fn eval_comparison(op: BinOp, l: Ev, r: Ev, rows: usize) -> Result<Ev> {
    // Fast paths: numeric column vs numeric scalar (the overwhelmingly
    // common shape for predicates like `bp > 140`).
    match (&l, &r) {
        (Ev::Column(col), Ev::Scalar(s))
            if col.data_type().is_numeric() && s.data_type() != DataType::Utf8 =>
        {
            let threshold = s.as_f64().map_err(ExecError::from)?;
            let mask = match col {
                Column::Float64(v) => cmp_scalar(op, v.iter().copied(), threshold),
                Column::Int64(v) => cmp_scalar(op, v.iter().map(|&x| x as f64), threshold),
                _ => unreachable!(),
            };
            return Ok(Ev::Column(Column::Bool(mask)));
        }
        (Ev::Scalar(_), Ev::Column(_)) => {
            return eval_comparison(flip_cmp(op), r, l, rows);
        }
        _ => {}
    }
    // String equality fast path.
    if let (Ev::Column(Column::Utf8(vs)), Ev::Scalar(Value::Utf8(s))) = (&l, &r) {
        let mask = vs
            .iter()
            .map(|v| cmp_matches(op, v.as_str().cmp(s.as_str())))
            .collect();
        return Ok(Ev::Column(Column::Bool(mask)));
    }
    // Generic path: row-wise Value comparison.
    let lc = force(l, rows);
    let rc = force(r, rows);
    let mut mask = Vec::with_capacity(rows);
    for i in 0..rows {
        let (a, b) = (lc.get(i)?, rc.get(i)?);
        let ord = a.partial_cmp_value(&b).ok_or_else(|| {
            ExecError::Eval(format!(
                "cannot compare {:?} with {:?}",
                a.data_type(),
                b.data_type()
            ))
        })?;
        mask.push(cmp_matches(op, ord));
    }
    Ok(Ev::Column(Column::Bool(mask)))
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

fn cmp_scalar(op: BinOp, values: impl Iterator<Item = f64>, t: f64) -> Vec<bool> {
    match op {
        BinOp::Eq => values.map(|v| v == t).collect(),
        BinOp::NotEq => values.map(|v| v != t).collect(),
        BinOp::Lt => values.map(|v| v < t).collect(),
        BinOp::LtEq => values.map(|v| v <= t).collect(),
        BinOp::Gt => values.map(|v| v > t).collect(),
        BinOp::GtEq => values.map(|v| v >= t).collect(),
        _ => unreachable!(),
    }
}

fn force(e: Ev, rows: usize) -> Column {
    match e {
        Ev::Column(c) => c,
        Ev::Scalar(v) => scalar_column(&v, rows),
    }
}

fn eval_arithmetic(op: BinOp, l: Ev, r: Ev, rows: usize) -> Result<Ev> {
    // Scalar ∘ scalar folds immediately.
    if let (Ev::Scalar(a), Ev::Scalar(b)) = (&l, &r) {
        let (x, y) = (
            a.as_f64().map_err(ExecError::from)?,
            b.as_f64().map_err(ExecError::from)?,
        );
        return Ok(Ev::Scalar(Value::Float64(apply_arith(op, x, y))));
    }
    // Integer column ∘ integer scalar keeps Int64 for +,-,*.
    if let (Ev::Column(Column::Int64(v)), Ev::Scalar(Value::Int64(s))) = (&l, &r) {
        if matches!(op, BinOp::Plus | BinOp::Minus | BinOp::Multiply) {
            let out = v
                .iter()
                .map(|&x| match op {
                    BinOp::Plus => x + s,
                    BinOp::Minus => x - s,
                    BinOp::Multiply => x * s,
                    _ => unreachable!(),
                })
                .collect();
            return Ok(Ev::Column(Column::Int64(out)));
        }
    }
    let lc = force(l, rows).to_f64_vec()?;
    let rc = force(r, rows).to_f64_vec()?;
    let out: Vec<f64> = lc
        .iter()
        .zip(&rc)
        .map(|(&a, &b)| apply_arith(op, a, b))
        .collect();
    Ok(Ev::Column(Column::Float64(out)))
}

fn apply_arith(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Plus => a + b,
        BinOp::Minus => a - b,
        BinOp::Multiply => a * b,
        BinOp::Divide => a / b,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::Schema;

    fn batch() -> RecordBatch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("bp", DataType::Float64),
            ("dest", DataType::Utf8),
            ("pregnant", DataType::Bool),
        ])
        .into_shared();
        RecordBatch::try_new(
            schema,
            vec![
                Column::from(vec![1i64, 2, 3]),
                Column::from(vec![120.0, 150.0, 140.0]),
                Column::from(vec!["JFK", "LAX", "JFK"]),
                Column::from(vec![true, false, true]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = evaluate(&Expr::col("bp"), &b).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[120.0, 150.0, 140.0]);
        let c = evaluate(&Expr::lit(7i64), &b).unwrap();
        assert_eq!(c.i64_values().unwrap(), &[7, 7, 7]);
    }

    #[test]
    fn numeric_comparisons() {
        let b = batch();
        let mask = evaluate_predicate(&Expr::col("bp").gt(Expr::lit(140i64)), &b).unwrap();
        assert_eq!(mask, vec![false, true, false]);
        let mask = evaluate_predicate(&Expr::col("bp").gt_eq(Expr::lit(140i64)), &b).unwrap();
        assert_eq!(mask, vec![false, true, true]);
        // literal on the left
        let mask = evaluate_predicate(
            &Expr::binary(BinOp::Lt, Expr::lit(140i64), Expr::col("bp")),
            &b,
        )
        .unwrap();
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn string_equality() {
        let b = batch();
        let mask = evaluate_predicate(&Expr::col("dest").eq(Expr::lit("JFK")), &b).unwrap();
        assert_eq!(mask, vec![true, false, true]);
        let mask = evaluate_predicate(
            &Expr::binary(BinOp::NotEq, Expr::col("dest"), Expr::lit("JFK")),
            &b,
        )
        .unwrap();
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn logical_ops() {
        let b = batch();
        let e = Expr::col("pregnant")
            .eq(Expr::lit(true))
            .and(Expr::col("bp").gt(Expr::lit(130i64)));
        assert_eq!(
            evaluate_predicate(&e, &b).unwrap(),
            vec![false, false, true]
        );
        let e = Expr::col("dest")
            .eq(Expr::lit("LAX"))
            .or(Expr::col("id").eq(Expr::lit(1i64)));
        assert_eq!(evaluate_predicate(&e, &b).unwrap(), vec![true, true, false]);
        let e = Expr::Not(Box::new(Expr::col("pregnant").eq(Expr::lit(true))));
        assert_eq!(
            evaluate_predicate(&e, &b).unwrap(),
            vec![false, true, false]
        );
    }

    #[test]
    fn bool_column_as_predicate() {
        let b = batch();
        let mask = evaluate_predicate(&Expr::col("pregnant"), &b).unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn arithmetic() {
        let b = batch();
        let c = evaluate(
            &Expr::binary(BinOp::Plus, Expr::col("bp"), Expr::lit(10i64)),
            &b,
        )
        .unwrap();
        assert_eq!(c.f64_values().unwrap(), &[130.0, 160.0, 150.0]);
        // Int column + int literal stays Int64.
        let c = evaluate(
            &Expr::binary(BinOp::Multiply, Expr::col("id"), Expr::lit(3i64)),
            &b,
        )
        .unwrap();
        assert_eq!(c.i64_values().unwrap(), &[3, 6, 9]);
        // Column / column.
        let c = evaluate(
            &Expr::binary(BinOp::Divide, Expr::col("bp"), Expr::col("id")),
            &b,
        )
        .unwrap();
        assert_eq!(c.f64_values().unwrap(), &[120.0, 75.0, 140.0 / 3.0]);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        // The shape of an inlined decision stump.
        let e = Expr::Case {
            branches: vec![
                (Expr::col("bp").gt(Expr::lit(140i64)), Expr::lit(7.0f64)),
                (Expr::col("bp").gt(Expr::lit(120i64)), Expr::lit(4.0f64)),
            ],
            else_expr: Box::new(Expr::lit(2.0f64)),
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[2.0, 7.0, 4.0]);
    }

    #[test]
    fn case_first_match_wins() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![
                (Expr::lit(true), Expr::lit(1.0f64)),
                (Expr::lit(true), Expr::lit(2.0f64)),
            ],
            else_expr: Box::new(Expr::lit(3.0f64)),
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(c.f64_values().unwrap(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn case_string_branches() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![(Expr::col("bp").gt(Expr::lit(130i64)), Expr::lit("high"))],
            else_expr: Box::new(Expr::lit("ok")),
        };
        let c = evaluate(&e, &b).unwrap();
        assert_eq!(c.utf8_values().unwrap(), &["ok", "high", "high"]);
    }

    #[test]
    fn errors() {
        let b = batch();
        // Non-boolean predicate.
        assert!(evaluate_predicate(&Expr::col("bp"), &b).is_err());
        // Unknown column.
        assert!(evaluate(&Expr::col("ghost"), &b).is_err());
        // Cross-type comparison (string vs number).
        assert!(evaluate_predicate(&Expr::col("dest").gt(Expr::lit(1i64)), &b).is_err());
        // NOT over non-bool.
        assert!(evaluate(&Expr::Not(Box::new(Expr::col("bp"))), &b).is_err());
        // Arithmetic over strings.
        assert!(evaluate(
            &Expr::binary(BinOp::Plus, Expr::col("dest"), Expr::lit(1i64)),
            &b
        )
        .is_err());
    }
}
