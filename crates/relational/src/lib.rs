//! # raven-relational
//!
//! A parallel in-memory relational execution engine: the stand-in for SQL
//! Server's relational runtime in the raven-rs reproduction of *"Extending
//! Relational Query Processing with ML Inference"* (CIDR 2020).
//!
//! The engine executes the relational subset of [`raven_ir::Plan`]
//! (scan/filter/project/hash-join/aggregate/sort/union/limit) over
//! [`raven_data`] tables, and delegates model operators (`Predict`,
//! `TensorPredict`, `ClusteredPredict`, `Udf`) to a [`exec::Scorer`]
//! implementation supplied by the runtime layer — mirroring how the paper
//! plugs ONNX Runtime (and external runtimes) into SQL Server's executor.
//!
//! Two properties of the paper's engine are reproduced because its
//! results depend on them:
//!
//! * **automatic intra-query parallelism** — filters and model scoring
//!   are evaluated morsel-parallel across worker threads, the effect
//!   behind Raven beating standalone ONNX Runtime by ~5× at 1M+ rows
//!   (Fig. 3, observation iii);
//! * **vectorized (columnar) expression evaluation** ([`eval`]), including
//!   `CASE` expressions, which is what makes *model inlining* (paper §4.2)
//!   profitable.

pub mod error;
pub mod eval;
pub mod exec;

pub use error::ExecError;
pub use eval::{evaluate, evaluate_predicate};
pub use exec::{CancelToken, ExecOptions, Executor, NoopScorer, Scorer, SharedExecutor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;
