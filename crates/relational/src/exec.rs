//! The morsel-parallel plan executor.

use crate::error::ExecError;
use crate::eval::{evaluate, evaluate_predicate};
use crate::Result;
use raven_data::{Catalog, Column, RecordBatch, Schema, Table, Value};
use raven_ir::{AggFunc, Expr, Plan};
use raven_obs::SpanRecorder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
#[allow(unused_imports)]
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation token threaded through plan execution.
///
/// The serving layer's deadline story hangs off this: a token carries an
/// optional wall-clock deadline and a shared flag, and the executor (plus
/// any cancellation-aware [`Scorer`]) polls it between operators and
/// morsels, aborting with [`ExecError::Cancelled`] instead of finishing
/// work whose requester has already given up. Checks are cooperative —
/// a long single scorer invocation still runs to completion — which
/// bounds over-run to one operator/morsel rather than one query.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation (visible to every clone of this token).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token was cancelled or its deadline has expired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|at| Instant::now() >= at)
    }

    /// `Err(ExecError::Cancelled)` once cancelled, `Ok(())` before.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(ExecError::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Scoring hook for model operators.
///
/// The relational engine executes RA operators itself and hands `Predict`,
/// `TensorPredict`, `ClusteredPredict` and `Udf` nodes to a `Scorer` — the
/// seam where the paper plugs ONNX Runtime (in-process), external language
/// runtimes (out-of-process) and containers into SQL Server's executor.
pub trait Scorer: Send + Sync {
    /// Score `node` (a model operator) over `batch`, returning one
    /// prediction per row.
    fn score(&self, node: &Plan, batch: &RecordBatch) -> Result<Vec<f64>>;

    /// Cancellation-aware scoring. The default checks the token once and
    /// delegates to [`Scorer::score`]; scorers with internally long
    /// invocations (simulated external runtimes, chunked REST calls)
    /// override this to poll `cancel` between chunks.
    fn score_cancellable(
        &self,
        node: &Plan,
        batch: &RecordBatch,
        cancel: &CancelToken,
    ) -> Result<Vec<f64>> {
        cancel.check()?;
        self.score(node, batch)
    }

    /// Tracing-aware scoring, threaded the same way cancellation is: the
    /// default opens a `scorer-invocation` span (free when the recorder
    /// is disabled) and delegates to [`Scorer::score_cancellable`], so
    /// existing scorers keep compiling. Scorers that know more — the
    /// runtime layer knows the model name and execution mode — override
    /// this to label the span.
    fn score_traced(
        &self,
        node: &Plan,
        batch: &RecordBatch,
        cancel: &CancelToken,
        trace: &SpanRecorder,
    ) -> Result<Vec<f64>> {
        let _span = trace.span("scorer-invocation");
        self.score_cancellable(node, batch, cancel)
    }

    /// Whether the engine may split the input into morsels and call
    /// [`Scorer::score`] from multiple worker threads. Out-of-process
    /// scorers typically serialize on one external runtime and return
    /// `false`.
    fn parallelizable(&self, node: &Plan) -> bool {
        let _ = node;
        true
    }
}

/// Static span name for an operator, used for per-operator execution
/// spans. `op:` prefixed so trace renderings read unambiguously next to
/// request-level stages.
fn op_span_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "op:scan",
        Plan::Filter { .. } => "op:filter",
        Plan::Project { .. } => "op:project",
        Plan::Join { .. } => "op:join",
        Plan::Aggregate { .. } => "op:aggregate",
        Plan::Union { .. } => "op:union",
        Plan::Sort { .. } => "op:sort",
        Plan::Limit { .. } => "op:limit",
        Plan::Predict { .. } => "op:predict",
        Plan::TensorPredict { .. } => "op:tensor-predict",
        Plan::KernelPredict { .. } => "op:kernel-predict",
        Plan::ClusteredPredict { .. } => "op:clustered-predict",
        Plan::Udf { .. } => "op:udf",
    }
}

/// A scorer that rejects every model operator (pure-relational execution).
#[derive(Debug, Default)]
pub struct NoopScorer;

impl Scorer for NoopScorer {
    fn score(&self, node: &Plan, _batch: &RecordBatch) -> Result<Vec<f64>> {
        Err(ExecError::NoScorer(node.label()))
    }
}

/// Executor knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads for morsel-parallel operators (0 = all cores).
    pub parallelism: usize,
    /// Row-count threshold below which execution stays single-threaded —
    /// mirrors SQL Server choosing serial plans for small inputs.
    pub parallel_threshold: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallelism: 0,
            parallel_threshold: 20_000,
        }
    }
}

impl ExecOptions {
    /// Fully serial execution.
    pub fn serial() -> Self {
        ExecOptions {
            parallelism: 1,
            parallel_threshold: usize::MAX,
        }
    }

    fn workers(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }
}

/// Executes plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    scorer: &'a dyn Scorer,
    options: ExecOptions,
    cancel: CancelToken,
    trace: SpanRecorder,
}

/// An executor that *owns* its catalog and scorer behind `Arc`s, so it can
/// be held by long-lived, multi-threaded components (the serving layer)
/// without borrow plumbing. `Send + Sync`: one instance may execute plans
/// from many worker threads concurrently.
pub struct SharedExecutor {
    catalog: Arc<Catalog>,
    scorer: Arc<dyn Scorer>,
    options: ExecOptions,
}

impl SharedExecutor {
    pub fn new(catalog: Arc<Catalog>, scorer: Arc<dyn Scorer>, options: ExecOptions) -> Self {
        SharedExecutor {
            catalog,
            scorer,
            options,
        }
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Execute a plan to a materialized table.
    pub fn execute(&self, plan: &Plan) -> Result<Table> {
        Executor::new(&self.catalog, self.scorer.as_ref(), self.options).execute(plan)
    }

    /// Execute a plan under a cancellation token: the executor polls the
    /// token between operators and morsels and aborts with
    /// [`ExecError::Cancelled`] once it fires (or its deadline passes).
    pub fn execute_with(&self, plan: &Plan, cancel: &CancelToken) -> Result<Table> {
        Executor::new(&self.catalog, self.scorer.as_ref(), self.options)
            .with_cancel(cancel.clone())
            .execute(plan)
    }

    /// [`SharedExecutor::execute_with_params`] plus a span recorder: when
    /// the request is sampled, every operator and scorer invocation lands
    /// in its span tree. A disabled recorder adds one branch per
    /// operator.
    pub fn execute_traced(
        &self,
        plan: &Plan,
        params: &[raven_data::Value],
        cancel: &CancelToken,
        trace: &SpanRecorder,
    ) -> Result<Table> {
        let run = |plan: &Plan| {
            Executor::new(&self.catalog, self.scorer.as_ref(), self.options)
                .with_cancel(cancel.clone())
                .with_trace(trace.clone())
                .execute(plan)
        };
        if params.is_empty() && plan.parameter_count() == 0 {
            return run(plan);
        }
        let bound = plan
            .bind_parameters(params)
            .map_err(|e| ExecError::Eval(e.to_string()))?;
        run(&bound)
    }

    /// Execute a prepared template plan with positional parameter values:
    /// placeholders are substituted into a throwaway copy of the plan
    /// ([`Plan::bind_parameters`] — arity and types validated there), the
    /// cached template itself is never mutated. An empty parameter list
    /// over a parameter-free plan skips the copy entirely.
    pub fn execute_with_params(
        &self,
        plan: &Plan,
        params: &[raven_data::Value],
        cancel: &CancelToken,
    ) -> Result<Table> {
        if params.is_empty() && plan.parameter_count() == 0 {
            return self.execute_with(plan, cancel);
        }
        let bound = plan
            .bind_parameters(params)
            .map_err(|e| ExecError::Eval(e.to_string()))?;
        self.execute_with(&bound, cancel)
    }
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, scorer: &'a dyn Scorer, options: ExecOptions) -> Self {
        Executor {
            catalog,
            scorer,
            options,
            cancel: CancelToken::new(),
            trace: SpanRecorder::disabled(),
        }
    }

    /// Attach a cancellation token (checked between operators/morsels).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attach a span recorder (per-operator and scorer spans).
    pub fn with_trace(mut self, trace: SpanRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// Execute a plan to a materialized table.
    pub fn execute(&self, plan: &Plan) -> Result<Table> {
        Ok(Table::from_batch(self.exec(plan)?))
    }

    fn exec(&self, plan: &Plan) -> Result<RecordBatch> {
        self.cancel.check()?;
        // Recursive descent means child operators open their spans while
        // this guard is live, so the span tree mirrors the plan tree.
        let _op = self.trace.span(op_span_name(plan));
        match plan {
            Plan::Scan { table, schema } => {
                let t = self.catalog.table(table)?;
                if t.schema().fields() != schema.fields() {
                    return Err(ExecError::Internal(format!(
                        "scan schema for {table} does not match catalog"
                    )));
                }
                Ok(t.batch().clone())
            }
            Plan::Filter { input, predicate } => {
                let batch = self.exec(input)?;
                let filtered = self.morsel_map(&batch, true, |morsel| {
                    let mask = evaluate_predicate(predicate, morsel)?;
                    Ok(morsel.filter(&mask)?)
                })?;
                Ok(RecordBatch::concat(&filtered)?)
            }
            Plan::Project { input, exprs } => {
                let batch = self.exec(input)?;
                let schema = plan.schema()?;
                // Pure column references (renames, reorders — the shape
                // alias binding produces) pass columns through by shared
                // handle: no copy, no per-morsel work.
                let all_columns = exprs.iter().all(|(e, _)| matches!(e, Expr::Column(_)));
                if all_columns {
                    let columns = exprs
                        .iter()
                        .map(|(e, _)| {
                            let Expr::Column(name) = e else {
                                unreachable!()
                            };
                            let idx = batch.schema().index_of(name)?;
                            Ok(batch.column_arc(idx)?.clone())
                        })
                        .collect::<Result<Vec<_>>>()?;
                    return Ok(RecordBatch::try_new_shared(schema, columns)?);
                }
                let parts = self.morsel_map(&batch, true, |morsel| {
                    let columns = exprs
                        .iter()
                        .map(|(e, _)| coerce_to(evaluate(e, morsel)?, &schema, exprs, e))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(RecordBatch::try_new(schema.clone(), columns)?)
                })?;
                Ok(RecordBatch::concat(&parts)?)
            }
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                let lb = self.exec(left)?;
                let rb = self.exec(right)?;
                self.hash_join(&lb, &rb, left_key, right_key)
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let batch = self.exec(input)?;
                let schema = plan.schema()?;
                hash_aggregate(&batch, group_by, aggregates, schema)
            }
            Plan::Union { inputs } => {
                let batches = inputs
                    .iter()
                    .map(|p| self.exec(p))
                    .collect::<Result<Vec<_>>>()?;
                // Align to the first input's schema (names may differ).
                let schema = batches[0].schema().clone();
                let aligned = batches
                    .into_iter()
                    .map(|b| {
                        RecordBatch::try_new_shared(schema.clone(), b.columns().to_vec())
                            .map_err(ExecError::from)
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(RecordBatch::concat(&aligned)?)
            }
            Plan::Sort {
                input,
                column,
                descending,
            } => {
                let batch = self.exec(input)?;
                let col = batch.column_by_name(column)?;
                let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
                sort_indices(&mut indices, col, *descending)?;
                Ok(batch.take(&indices)?)
            }
            Plan::Limit { input, fetch } => {
                let batch = self.exec(input)?;
                let end = (*fetch).min(batch.num_rows());
                Ok(batch.slice(0, end)?)
            }
            Plan::Predict { input, output, .. }
            | Plan::TensorPredict { input, output, .. }
            | Plan::KernelPredict { input, output, .. }
            | Plan::ClusteredPredict { input, output, .. }
            | Plan::Udf { input, output, .. } => {
                let batch = self.exec(input)?;
                let allow_parallel = self.scorer.parallelizable(plan);
                let scores = self.morsel_map(&batch, allow_parallel, |morsel| {
                    let s = self
                        .scorer
                        .score_traced(plan, morsel, &self.cancel, &self.trace)?;
                    if s.len() != morsel.num_rows() {
                        return Err(ExecError::Scoring(format!(
                            "scorer returned {} predictions for {} rows",
                            s.len(),
                            morsel.num_rows()
                        )));
                    }
                    Ok(s)
                })?;
                let predictions: Vec<f64> = scores.into_iter().flatten().collect();
                let schema = plan.schema()?;
                let mut columns = batch.columns().to_vec();
                columns.push(std::sync::Arc::new(Column::Float64(predictions)));
                let _ = output;
                Ok(RecordBatch::try_new_shared(schema, columns)?)
            }
        }
    }

    /// Split `batch` into per-worker morsels and map `f` over them (in
    /// parallel when the batch is large enough and `allow_parallel`).
    /// Results come back in row order.
    fn morsel_map<T: Send>(
        &self,
        batch: &RecordBatch,
        allow_parallel: bool,
        f: impl Fn(&RecordBatch) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let rows = batch.num_rows();
        let workers = self.options.workers();
        self.cancel.check()?;
        if !allow_parallel
            || workers <= 1
            || rows < self.options.parallel_threshold
            || rows < workers
        {
            return Ok(vec![f(batch)?]);
        }
        // Near-equal contiguous ranges, one per worker.
        let base = rows / workers;
        let extra = rows % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for i in 0..workers {
            let len = base + usize::from(i < extra);
            ranges.push((start, start + len));
            start += len;
        }
        let mut results: Vec<Option<Result<T>>> = Vec::new();
        results.resize_with(ranges.len(), || None);
        crossbeam::thread::scope(|scope| {
            for (slot, &(lo, hi)) in results.iter_mut().zip(&ranges) {
                let f = &f;
                let cancel = &self.cancel;
                scope.spawn(move |_| {
                    if let Err(e) = cancel.check() {
                        *slot = Some(Err(e));
                        return;
                    }
                    let morsel = match batch.slice(lo, hi) {
                        Ok(m) => m,
                        Err(e) => {
                            *slot = Some(Err(e.into()));
                            return;
                        }
                    };
                    *slot = Some(f(&morsel));
                });
            }
        })
        .map_err(|_| ExecError::Internal("worker panicked".into()))?;
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(ExecError::Internal("missing morsel".into()))))
            .collect()
    }

    fn hash_join(
        &self,
        left: &RecordBatch,
        right: &RecordBatch,
        left_key: &str,
        right_key: &str,
    ) -> Result<RecordBatch> {
        let lcol = left.column_by_name(left_key)?;
        let rcol = right.column_by_name(right_key)?;
        // Build on the right side.
        let mut build: HashMap<JoinKey, Vec<usize>> = HashMap::with_capacity(right.num_rows());
        for i in 0..rcol.len() {
            build
                .entry(JoinKey::from_value(&rcol.get(i)?)?)
                .or_default()
                .push(i);
        }
        let mut left_idx = Vec::new();
        let mut right_idx = Vec::new();
        for i in 0..lcol.len() {
            if let Some(matches) = build.get(&JoinKey::from_value(&lcol.get(i)?)?) {
                for &j in matches {
                    left_idx.push(i);
                    right_idx.push(j);
                }
            }
        }
        let lout = left.take(&left_idx)?;
        let rout = right.take(&right_idx)?;
        let schema = Arc::new(lout.schema().join(rout.schema()));
        let mut columns = lout.columns().to_vec();
        columns.extend(rout.columns().iter().cloned());
        Ok(RecordBatch::try_new_shared(schema, columns)?)
    }
}

/// Hashable join/group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Int(i64),
    Str(String),
    Bool(bool),
    /// f64 keys hashed by bit pattern (exact-match equi-join semantics).
    Bits(u64),
}

impl JoinKey {
    fn from_value(v: &Value) -> Result<JoinKey> {
        Ok(match v {
            Value::Int64(x) => JoinKey::Int(*x),
            Value::Utf8(s) => JoinKey::Str(s.clone()),
            Value::Bool(b) => JoinKey::Bool(*b),
            Value::Float64(f) => JoinKey::Bits(f.to_bits()),
        })
    }
}

/// Coerce an evaluated column to the type the projected schema expects
/// (Int64 expression results may need widening to Float64, e.g. when a
/// CASE branch mixes literals).
fn coerce_to(
    col: Column,
    schema: &Arc<Schema>,
    exprs: &[(Expr, String)],
    expr: &Expr,
) -> Result<Column> {
    let idx = exprs
        .iter()
        .position(|(e, _)| e == expr)
        .ok_or_else(|| ExecError::Internal("expression not in projection".into()))?;
    let want = schema.field(idx)?.dtype;
    if col.data_type() == want {
        return Ok(col);
    }
    match (col, want) {
        (Column::Int64(v), raven_data::DataType::Float64) => {
            Ok(Column::Float64(v.into_iter().map(|x| x as f64).collect()))
        }
        (Column::Float64(v), raven_data::DataType::Int64) => {
            Ok(Column::Int64(v.into_iter().map(|x| x as i64).collect()))
        }
        (col, want) => Err(ExecError::Eval(format!(
            "cannot coerce {} to {}",
            col.data_type(),
            want
        ))),
    }
}

fn sort_indices(indices: &mut [usize], col: &Column, descending: bool) -> Result<()> {
    match col {
        Column::Int64(v) => indices.sort_by_key(|&i| v[i]),
        Column::Bool(v) => indices.sort_by_key(|&i| v[i]),
        Column::Utf8(v) => indices.sort_by(|&a, &b| v[a].cmp(&v[b])),
        Column::Float64(v) => {
            indices.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal))
        }
    }
    if descending {
        indices.reverse();
    }
    Ok(())
}

/// Aggregate accumulator.
enum Acc {
    Count(i64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: usize },
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0.0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => *s += v.as_f64().map_err(ExecError::from)?,
            Acc::Avg { sum, n } => {
                *sum += v.as_f64().map_err(ExecError::from)?;
                *n += 1;
            }
            Acc::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v
                        .partial_cmp_value(c)
                        .map(|o| o == std::cmp::Ordering::Less)
                        .unwrap_or(false),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v
                        .partial_cmp_value(c)
                        .map(|o| o == std::cmp::Ordering::Greater)
                        .unwrap_or(false),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(&self, want: raven_data::DataType) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(*n),
            Acc::Sum(s) => match want {
                raven_data::DataType::Int64 => Value::Int64(*s as i64),
                _ => Value::Float64(*s),
            },
            Acc::Avg { sum, n } => Value::Float64(if *n == 0 { 0.0 } else { sum / *n as f64 }),
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Float64(f64::NAN)),
        }
    }
}

fn hash_aggregate(
    batch: &RecordBatch,
    group_by: &[String],
    aggregates: &[(AggFunc, String, String)],
    schema: Arc<Schema>,
) -> Result<RecordBatch> {
    let group_cols: Vec<&Column> = group_by
        .iter()
        .map(|g| batch.column_by_name(g))
        .collect::<std::result::Result<_, _>>()?;
    let agg_cols: Vec<&Column> = aggregates
        .iter()
        .map(|(_, c, _)| batch.column_by_name(c))
        .collect::<std::result::Result<_, _>>()?;

    // Group index: key → slot, preserving first-seen order.
    let mut slots: HashMap<Vec<JoinKey>, usize> = HashMap::new();
    let mut group_values: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for r in 0..batch.num_rows() {
        let mut key = Vec::with_capacity(group_cols.len());
        for col in &group_cols {
            key.push(JoinKey::from_value(&col.get(r)?)?);
        }
        let slot = match slots.get(&key) {
            Some(&s) => s,
            None => {
                let s = group_values.len();
                slots.insert(key, s);
                group_values.push(
                    group_cols
                        .iter()
                        .map(|c| c.get(r))
                        .collect::<std::result::Result<_, _>>()?,
                );
                accs.push(aggregates.iter().map(|(f, _, _)| Acc::new(*f)).collect());
                s
            }
        };
        for (acc, col) in accs[slot].iter_mut().zip(&agg_cols) {
            acc.update(&col.get(r)?)?;
        }
    }
    // Global aggregate with no groups over an empty input: one row of
    // zero-ish accumulators, matching SQL semantics for COUNT.
    if group_by.is_empty() && group_values.is_empty() {
        group_values.push(vec![]);
        accs.push(aggregates.iter().map(|(f, _, _)| Acc::new(*f)).collect());
    }

    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.dtype, group_values.len()))
        .collect();
    for (gv, acc_row) in group_values.iter().zip(&accs) {
        for (c, v) in columns.iter_mut().zip(gv.iter().cloned()) {
            c.push(v)?;
        }
        for (i, acc) in acc_row.iter().enumerate() {
            let field = schema.field(group_by.len() + i)?;
            columns[group_by.len() + i].push(acc.finish(field.dtype))?;
        }
    }
    Ok(RecordBatch::try_new(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::DataType;
    use raven_ir::{JoinKind, ModelRef};
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline, Transform};

    /// Scorer that runs the classical pipeline in-process (test double for
    /// the runtime layer).
    struct PipelineScorer;

    impl Scorer for PipelineScorer {
        fn score(&self, node: &Plan, batch: &RecordBatch) -> Result<Vec<f64>> {
            match node {
                Plan::Predict { model, .. } => model
                    .pipeline
                    .predict(batch)
                    .map_err(|e| ExecError::Scoring(e.to_string())),
                other => Err(ExecError::NoScorer(other.label())),
            }
        }
    }

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("age", DataType::Float64),
            ("dest", DataType::Utf8),
        ])
        .into_shared();
        let t = Table::try_new(
            schema,
            vec![
                Column::from(vec![1i64, 2, 3, 4]),
                Column::from(vec![30.0, 40.0, 50.0, 60.0]),
                Column::from(vec!["JFK", "LAX", "JFK", "SEA"]),
            ],
        )
        .unwrap();
        cat.register("people", t).unwrap();

        let schema2 = Schema::from_pairs(&[("pid", DataType::Int64), ("bp", DataType::Float64)])
            .into_shared();
        let t2 = Table::try_new(
            schema2,
            vec![
                Column::from(vec![1i64, 2, 2, 5]),
                Column::from(vec![120.0, 130.0, 150.0, 110.0]),
            ],
        )
        .unwrap();
        cat.register("vitals", t2).unwrap();
        cat
    }

    fn scan(cat: &Catalog, name: &str) -> Plan {
        Plan::Scan {
            table: name.into(),
            schema: cat.table(name).unwrap().schema().clone(),
        }
    }

    fn exec(cat: &Catalog, plan: &Plan) -> Table {
        Executor::new(cat, &PipelineScorer, ExecOptions::serial())
            .execute(plan)
            .unwrap()
    }

    #[test]
    fn scan_and_filter() {
        let cat = catalog();
        let plan = Plan::Filter {
            input: Box::new(scan(&cat, "people")),
            predicate: Expr::col("age").gt(Expr::lit(35i64)),
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(
            t.column_by_name("id").unwrap().i64_values().unwrap(),
            &[2, 3, 4]
        );
    }

    #[test]
    fn project_with_expressions() {
        let cat = catalog();
        let plan = Plan::Project {
            input: Box::new(scan(&cat, "people")),
            exprs: vec![
                (Expr::col("id"), "id".into()),
                (
                    Expr::binary(raven_ir::BinOp::Multiply, Expr::col("age"), Expr::lit(2i64)),
                    "age2".into(),
                ),
            ],
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.schema().names(), vec!["id", "age2"]);
        assert_eq!(
            t.column_by_name("age2").unwrap().f64_values().unwrap(),
            &[60.0, 80.0, 100.0, 120.0]
        );
    }

    #[test]
    fn hash_join_inner() {
        let cat = catalog();
        let plan = Plan::Join {
            left: Box::new(scan(&cat, "people")),
            right: Box::new(scan(&cat, "vitals")),
            left_key: "id".into(),
            right_key: "pid".into(),
            kind: JoinKind::Inner,
        };
        let t = exec(&cat, &plan);
        // id=1 matches once, id=2 matches twice; 3,4 don't match.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(
            t.column_by_name("bp").unwrap().f64_values().unwrap(),
            &[120.0, 130.0, 150.0]
        );
        assert_eq!(t.schema().names().len(), 5);
    }

    #[test]
    fn aggregate_grouped() {
        let cat = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(scan(&cat, "people")),
            group_by: vec!["dest".into()],
            aggregates: vec![
                (AggFunc::Count, "id".into(), "n".into()),
                (AggFunc::Avg, "age".into(), "avg_age".into()),
                (AggFunc::Max, "age".into(), "max_age".into()),
            ],
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.num_rows(), 3);
        // First-seen order: JFK, LAX, SEA.
        assert_eq!(
            t.column_by_name("dest").unwrap().utf8_values().unwrap(),
            &["JFK", "LAX", "SEA"]
        );
        assert_eq!(
            t.column_by_name("n").unwrap().i64_values().unwrap(),
            &[2, 1, 1]
        );
        assert_eq!(
            t.column_by_name("avg_age").unwrap().f64_values().unwrap(),
            &[40.0, 40.0, 60.0]
        );
        assert_eq!(
            t.column_by_name("max_age").unwrap().f64_values().unwrap(),
            &[50.0, 40.0, 60.0]
        );
    }

    #[test]
    fn aggregate_global() {
        let cat = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(scan(&cat, "people")),
            group_by: vec![],
            aggregates: vec![
                (AggFunc::Count, "id".into(), "n".into()),
                (AggFunc::Sum, "id".into(), "s".into()),
            ],
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column_by_name("n").unwrap().i64_values().unwrap(), &[4]);
        assert_eq!(t.column_by_name("s").unwrap().i64_values().unwrap(), &[10]);
    }

    #[test]
    fn aggregate_global_empty_input() {
        let cat = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(&cat, "people")),
                predicate: Expr::col("age").gt(Expr::lit(1000i64)),
            }),
            group_by: vec![],
            aggregates: vec![(AggFunc::Count, "id".into(), "n".into())],
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column_by_name("n").unwrap().i64_values().unwrap(), &[0]);
    }

    #[test]
    fn sort_and_limit() {
        let cat = catalog();
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(scan(&cat, "people")),
                column: "age".into(),
                descending: true,
            }),
            fetch: 2,
        };
        let t = exec(&cat, &plan);
        assert_eq!(
            t.column_by_name("age").unwrap().f64_values().unwrap(),
            &[60.0, 50.0]
        );
    }

    #[test]
    fn union_concatenates() {
        let cat = catalog();
        let a = scan(&cat, "people");
        let plan = Plan::Union {
            inputs: vec![a.clone(), a],
        };
        let t = exec(&cat, &plan);
        assert_eq!(t.num_rows(), 8);
    }

    #[test]
    fn predict_appends_scores() {
        let cat = catalog();
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("age", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![0.1], 1.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(scan(&cat, "people")),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: raven_ir::ExecutionMode::InProcess,
        };
        let t = exec(&cat, &plan);
        assert_eq!(
            t.column_by_name("score").unwrap().f64_values().unwrap(),
            &[4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn parallel_execution_matches_serial() {
        // Large synthetic table to cross the parallel threshold.
        let cat = Catalog::new();
        let n = 50_000;
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        let t = Table::try_new(
            schema,
            vec![Column::Float64((0..n).map(|i| (i % 997) as f64).collect())],
        )
        .unwrap();
        cat.register("big", t).unwrap();
        let plan = Plan::Filter {
            input: Box::new(scan(&cat, "big")),
            predicate: Expr::col("x").gt(Expr::lit(500i64)),
        };
        let serial = Executor::new(&cat, &NoopScorer, ExecOptions::serial())
            .execute(&plan)
            .unwrap();
        let parallel = Executor::new(
            &cat,
            &NoopScorer,
            ExecOptions {
                parallelism: 4,
                parallel_threshold: 1000,
            },
        )
        .execute(&plan)
        .unwrap();
        assert_eq!(serial.num_rows(), parallel.num_rows());
        assert_eq!(serial.batch(), parallel.batch());
    }

    #[test]
    fn parameterized_template_executes_per_request() {
        let cat = catalog();
        let template = Plan::Filter {
            input: Box::new(scan(&cat, "people")),
            predicate: Expr::col("age").gt(Expr::typed_param(0, DataType::Float64)),
        };
        let shared = SharedExecutor::new(
            Arc::new(catalog()),
            Arc::new(NoopScorer) as Arc<dyn Scorer>,
            ExecOptions::serial(),
        );
        let cancel = CancelToken::new();
        // One template, three requests with different constants.
        for (threshold, expect) in [(35i64, 3usize), (45, 2), (55, 1)] {
            let t = shared
                .execute_with_params(&template, &[Value::Int64(threshold)], &cancel)
                .unwrap();
            assert_eq!(t.num_rows(), expect, "age > {threshold}");
        }
        // Unbound execution of a template is a typed error, not a panic.
        let err = shared.execute_with_params(&template, &[], &cancel);
        assert!(matches!(err, Err(ExecError::Eval(_))), "{err:?}");
        let direct = Executor::new(&cat, &NoopScorer, ExecOptions::serial()).execute(&template);
        assert!(matches!(direct, Err(ExecError::Eval(_))));
        // Wrong type: string into a Float64 slot.
        let err = shared.execute_with_params(&template, &[Value::Utf8("x".into())], &cancel);
        assert!(matches!(err, Err(ExecError::Eval(_))));
    }

    #[test]
    fn noop_scorer_rejects_models() {
        let cat = catalog();
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("age", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(scan(&cat, "people")),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: raven_ir::ExecutionMode::InProcess,
        };
        let err = Executor::new(&cat, &NoopScorer, ExecOptions::serial()).execute(&plan);
        assert!(matches!(err, Err(ExecError::NoScorer(_))));
    }

    #[test]
    fn cancelled_token_aborts_before_execution() {
        let cat = catalog();
        let plan = scan(&cat, "people");
        let token = CancelToken::new();
        token.cancel();
        let err = Executor::new(&cat, &NoopScorer, ExecOptions::serial())
            .with_cancel(token)
            .execute(&plan);
        assert!(matches!(err, Err(ExecError::Cancelled)));
    }

    #[test]
    fn expired_deadline_cancels_execution() {
        let cat = catalog();
        let plan = Plan::Filter {
            input: Box::new(scan(&cat, "people")),
            predicate: Expr::col("age").gt(Expr::lit(0i64)),
        };
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let err = Executor::new(&cat, &NoopScorer, ExecOptions::serial())
            .with_cancel(token)
            .execute(&plan);
        assert!(matches!(err, Err(ExecError::Cancelled)));
        // A generous deadline does not interfere.
        let token = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_secs(60),
        );
        let ok = Executor::new(&cat, &NoopScorer, ExecOptions::serial())
            .with_cancel(token)
            .execute(&plan);
        assert_eq!(ok.unwrap().num_rows(), 4);
    }

    #[test]
    fn cancellation_fires_between_scorer_morsels() {
        // A scorer that cancels the shared token from inside its first
        // invocation: the next morsel (or operator) must observe it.
        struct CancellingScorer(CancelToken);
        impl Scorer for CancellingScorer {
            fn score(&self, _node: &Plan, batch: &RecordBatch) -> Result<Vec<f64>> {
                self.0.cancel();
                Ok(vec![0.0; batch.num_rows()])
            }
        }
        let cat = catalog();
        let token = CancelToken::new();
        let inner = Plan::Predict {
            input: Box::new(scan(&cat, "people")),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(
                    Pipeline::new(
                        vec![FeatureStep::new("age", Transform::Identity)],
                        Estimator::Linear(
                            LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap(),
                        ),
                    )
                    .unwrap(),
                ),
            },
            output: "s1".into(),
            mode: raven_ir::ExecutionMode::InProcess,
        };
        // Two stacked Predicts: the first invocation cancels, the second
        // operator's pre-check aborts the plan.
        let plan = Plan::Predict {
            input: Box::new(inner),
            model: ModelRef {
                name: "m2".into(),
                pipeline: Arc::new(
                    Pipeline::new(
                        vec![FeatureStep::new("age", Transform::Identity)],
                        Estimator::Linear(
                            LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap(),
                        ),
                    )
                    .unwrap(),
                ),
            },
            output: "s2".into(),
            mode: raven_ir::ExecutionMode::InProcess,
        };
        let scorer = CancellingScorer(token.clone());
        let err = Executor::new(&cat, &scorer, ExecOptions::serial())
            .with_cancel(token)
            .execute(&plan);
        assert!(matches!(err, Err(ExecError::Cancelled)));
    }

    #[test]
    fn traced_execution_mirrors_the_plan_tree() {
        let cat = catalog();
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("age", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![0.1], 1.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(&cat, "people")),
                predicate: Expr::col("age").gt(Expr::lit(35i64)),
            }),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: raven_ir::ExecutionMode::InProcess,
        };
        let trace = SpanRecorder::enabled();
        let t = Executor::new(&cat, &PipelineScorer, ExecOptions::serial())
            .with_trace(trace.clone())
            .execute(&plan)
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        let spans = trace.into_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["op:predict", "op:filter", "op:scan", "scorer-invocation"]
        );
        // Parent links mirror the plan: filter under predict, scan under
        // filter, the scorer invocation under predict.
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[3].parent, Some(0));
        // An untraced executor records nothing and still works.
        let t2 = Executor::new(&cat, &PipelineScorer, ExecOptions::serial())
            .execute(&plan)
            .unwrap();
        assert_eq!(t2.num_rows(), 3);
    }

    #[test]
    fn case_projection_inlined_tree() {
        // Model inlining shape: CASE over bp, evaluated by the engine.
        let cat = catalog();
        let case = Expr::Case {
            branches: vec![(Expr::col("bp").gt(Expr::lit(140i64)), Expr::lit(7.0f64))],
            else_expr: Box::new(Expr::lit(2.0f64)),
        };
        let plan = Plan::Project {
            input: Box::new(scan(&cat, "vitals")),
            exprs: vec![(Expr::col("pid"), "pid".into()), (case, "stay".into())],
        };
        let t = exec(&cat, &plan);
        assert_eq!(
            t.column_by_name("stay").unwrap().f64_values().unwrap(),
            &[2.0, 2.0, 7.0, 2.0]
        );
    }
}
