//! Error type for the execution engine.

use std::fmt;

/// Errors produced during plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Data-layer failure (missing column/table, type mismatch...).
    Data(raven_data::DataError),
    /// IR-level failure (schema computation, typing).
    Ir(String),
    /// Expression evaluation failure.
    Eval(String),
    /// A model operator reached an executor with no scorer.
    NoScorer(String),
    /// Model scoring failed.
    Scoring(String),
    /// Execution was cancelled (explicitly, or by an expired deadline)
    /// before it completed.
    Cancelled,
    /// Anything else.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Data(e) => write!(f, "data error: {e}"),
            ExecError::Ir(msg) => write!(f, "ir error: {msg}"),
            ExecError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            ExecError::NoScorer(op) => {
                write!(f, "no scorer available for model operator: {op}")
            }
            ExecError::Scoring(msg) => write!(f, "scoring error: {msg}"),
            ExecError::Cancelled => write!(f, "execution cancelled"),
            ExecError::Internal(msg) => write!(f, "internal execution error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<raven_data::DataError> for ExecError {
    fn from(e: raven_data::DataError) -> Self {
        ExecError::Data(e)
    }
}

impl From<raven_ir::IrError> for ExecError {
    fn from(e: raven_ir::IrError) -> Self {
        ExecError::Ir(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ExecError = raven_data::DataError::TableNotFound("t".into()).into();
        assert_eq!(e.to_string(), "data error: table not found: t");
        let e: ExecError = raven_ir::IrError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("unknown column"));
    }
}
