//! Umbrella crate for the Raven workspace: re-exports the public facade
//! ([`raven_core`]) and the serving layer ([`raven_server`]). The
//! workspace's integration tests (`tests/`) and runnable examples
//! (`examples/`) are targets of this package.

pub use raven_core as core;
pub use raven_server as server;
