//! End-to-end semantic-equivalence suite: for randomized queries and
//! models, the fully optimized plan (any driver, any engine placement)
//! must return exactly the rows the unoptimized plan returns.
//!
//! This is the system-level counterpart of the per-rule proofs in
//! `tests/properties.rs`: it composes SQL binding, the whole rule
//! pipeline, NN translation and the execution engines.

use proptest::prelude::*;
use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{hospital, train};
use raven_opt::{OptimizerMode, RuleSet};

fn session_with_model(rules: RuleSet, mode: OptimizerMode) -> RavenSession {
    let mut config = SessionConfig::for_tests();
    config.rules = rules;
    config.optimizer_mode = mode;
    let session = RavenSession::with_config(config);
    let data = hospital::generate(600, 7);
    data.register(session.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    session.store_model("m", model).unwrap();
    session
}

/// Collect (id, score·1e3) pairs sorted, for order-insensitive comparison.
/// Scores quantize to 1e-3 because the NN-translated engine computes in
/// f32 while classical scoring uses f64 — identical decisions, last-ulp
/// differences.
fn rows_of(table: &raven_data::Table) -> Vec<(i64, i64)> {
    let ids = table.column_by_name("d.id").unwrap().i64_values().unwrap();
    let scores = table.column_by_name("p.s").unwrap().f64_values().unwrap();
    let mut v: Vec<(i64, i64)> = ids
        .iter()
        .zip(scores)
        .map(|(&i, &s)| (i, (s * 1e3).round() as i64))
        .collect();
    v.sort();
    v
}

/// Random-but-valid WHERE clauses over the hospital schema.
fn predicate_strategy() -> impl Strategy<Value = String> {
    let numeric = prop_oneof![
        (20.0..80.0f64).prop_map(|v| format!("d.age > {v:.1}")),
        (20.0..80.0f64).prop_map(|v| format!("d.age <= {v:.1}")),
        (100.0..180.0f64).prop_map(|v| format!("d.bp > {v:.1}")),
        Just("d.pregnant = 1".to_string()),
        Just("d.pregnant = 0".to_string()),
        Just("d.gender = 'F'".to_string()),
        (0.5..7.0f64).prop_map(|v| format!("p.s > {v:.2}")),
        (0.5..7.0f64).prop_map(|v| format!("p.s <= {v:.2}")),
    ];
    proptest::collection::vec(numeric, 1..4).prop_map(|cs| cs.join(" AND "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimized_queries_match_unoptimized(where_clause in predicate_strategy()) {
        let sql = format!(
            "WITH data AS (\
               SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id)\
             SELECT d.id, p.s FROM PREDICT(MODEL = 'm', DATA = data AS d) \
             WITH (s FLOAT) AS p WHERE {where_clause}"
        );
        let baseline = {
            let session = session_with_model(RuleSet::none(), OptimizerMode::Heuristic);
            rows_of(&session.query(&sql).unwrap().table)
        };
        for (label, rules, mode) in [
            ("heuristic/full", RuleSet::all(), OptimizerMode::Heuristic),
            ("cost-based/full", RuleSet::all(), OptimizerMode::CostBased),
            (
                "heuristic/tensor-only",
                RuleSet { model_inlining: false, ..RuleSet::all() },
                OptimizerMode::Heuristic,
            ),
        ] {
            let session = session_with_model(rules, mode);
            let got = rows_of(&session.query(&sql).unwrap().table);
            prop_assert_eq!(
                &got, &baseline,
                "{} diverged for WHERE {}", label, where_clause
            );
        }
    }
}

#[test]
fn empty_result_queries_are_safe() {
    let session = session_with_model(RuleSet::all(), OptimizerMode::Heuristic);
    // Contradictory predicate → empty result through every operator.
    let sql = "WITH data AS (\
         SELECT * FROM patient_info AS pi \
         JOIN blood_tests AS bt ON pi.id = bt.id \
         JOIN prenatal_tests AS pt ON bt.id = pt.id)\
       SELECT d.id, p.s FROM PREDICT(MODEL = 'm', DATA = data AS d) \
       WITH (s FLOAT) AS p WHERE d.age > 200 AND p.s > 100";
    let result = session.query(sql).unwrap();
    assert_eq!(result.table.num_rows(), 0);
}

#[test]
fn aggregation_over_predictions() {
    let session = session_with_model(RuleSet::all(), OptimizerMode::Heuristic);
    let sql = "WITH scored AS (\
         SELECT d.pregnant, p.s FROM PREDICT(MODEL = 'm', DATA = \
           (SELECT * FROM patient_info AS pi \
            JOIN blood_tests AS bt ON pi.id = bt.id \
            JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
         WITH (s FLOAT) AS p)\
       SELECT pregnant, COUNT(*) AS n, AVG(s) AS mean_stay \
       FROM scored GROUP BY pregnant ORDER BY pregnant ASC";
    let result = session.query(sql).unwrap();
    assert_eq!(result.table.num_rows(), 2);
    let means = result
        .table
        .column_by_name("mean_stay")
        .unwrap()
        .f64_values()
        .unwrap();
    // Pregnant patients stay longer on average in the generator.
    assert!(
        means[1] > means[0],
        "pregnant mean {} !> {}",
        means[1],
        means[0]
    );
}

#[test]
fn union_of_inference_branches() {
    let session = session_with_model(RuleSet::all(), OptimizerMode::Heuristic);
    let branch = |pred: &str| {
        format!(
            "SELECT d.id, p.s FROM PREDICT(MODEL = 'm', DATA = \
              (SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
             WITH (s FLOAT) AS p WHERE {pred}"
        )
    };
    let sql = format!(
        "{} UNION ALL {}",
        branch("d.age > 70"),
        branch("d.age <= 70")
    );
    let result = session.query(&sql).unwrap();
    assert_eq!(
        result.table.num_rows(),
        600,
        "partition must cover all rows"
    );
}

#[test]
fn limit_and_sort_over_predictions() {
    let session = session_with_model(RuleSet::all(), OptimizerMode::Heuristic);
    let sql = "SELECT d.id, p.s FROM PREDICT(MODEL = 'm', DATA = \
          (SELECT * FROM patient_info AS pi \
           JOIN blood_tests AS bt ON pi.id = bt.id \
           JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
         WITH (s FLOAT) AS p ORDER BY s DESC LIMIT 5";
    let result = session.query(sql).unwrap();
    assert_eq!(result.table.num_rows(), 5);
    let scores = result
        .table
        .column_by_name("p.s")
        .unwrap()
        .f64_values()
        .unwrap();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn model_version_update_changes_predictions_transactionally() {
    let session = session_with_model(RuleSet::all(), OptimizerMode::Heuristic);
    let sql = "SELECT d.id, p.s FROM PREDICT(MODEL = 'm', DATA = \
          (SELECT * FROM patient_info AS pi \
           JOIN blood_tests AS bt ON pi.id = bt.id \
           JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
         WITH (s FLOAT) AS p LIMIT 10";
    let v1 = session.query(sql).unwrap();
    // Store a constant model under the same name (version 2).
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    let constant = Pipeline::new(
        vec![FeatureStep::new("age", Transform::Identity)],
        Estimator::Linear(LinearModel::new(vec![0.0], 42.0, LinearKind::Regression).unwrap()),
    )
    .unwrap();
    session.store_model("m", constant).unwrap();
    let v2 = session.query(sql).unwrap();
    let scores = v2
        .table
        .column_by_name("p.s")
        .unwrap()
        .f64_values()
        .unwrap();
    assert!(scores.iter().all(|&s| s == 42.0));
    // Old version still retrievable from the store.
    assert_eq!(session.store().latest_version("m"), 2);
    assert!(session.store().get_version("m", 1).is_ok());
    let _ = v1;
}
