//! Cross-crate integration tests: the full Raven pipeline from SQL text
//! (or Python script) through the unified IR, cross optimizer, and every
//! execution engine, checked for end-to-end semantic equivalence.

use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{flights, hospital, train};
use raven_ir::{Device, Plan};
use raven_opt::RuleSet;

fn hospital_session(n: usize) -> (RavenSession, raven_datagen::HospitalData) {
    let session = RavenSession::with_config(SessionConfig::for_tests());
    let data = hospital::generate(n, 42);
    data.register(session.catalog()).unwrap();
    (session, data)
}

const HOSPITAL_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

/// Sorted (id, stay·1e3) pairs for order-insensitive comparison. Scores
/// quantize to 1e-3 (as in `end_to_end_equivalence.rs`): configurations
/// that disable inlining score on the NN-translated f32 engine while the
/// baseline scores in f64 — identical decisions, last-ulp differences.
fn result_set(table: &raven_data::Table) -> Vec<(i64, i64)> {
    let ids = table.column_by_name("d.id").unwrap().i64_values().unwrap();
    let stays = table
        .column_by_name("p.length_of_stay")
        .unwrap()
        .f64_values()
        .unwrap();
    let mut out: Vec<(i64, i64)> = ids
        .iter()
        .zip(stays)
        .map(|(&i, &s)| (i, (s * 1e3).round() as i64))
        .collect();
    out.sort();
    out
}

#[test]
fn every_rule_configuration_gives_identical_results() {
    let (mut session, _) = hospital_session(2_000);
    let model = train::hospital_tree(&hospital::generate(2_000, 42), 6).unwrap();
    session.store_model("duration_of_stay", model).unwrap();

    let baseline = {
        session.set_rules(RuleSet::none());
        result_set(&session.query(HOSPITAL_SQL).unwrap().table)
    };
    assert!(!baseline.is_empty());

    let configs: Vec<(&str, RuleSet)> = vec![
        ("all", RuleSet::all()),
        ("relational only", RuleSet::relational_only()),
        (
            "no inlining",
            RuleSet {
                model_inlining: false,
                ..RuleSet::all()
            },
        ),
        (
            "no translation",
            RuleSet {
                nn_translation: false,
                ..RuleSet::all()
            },
        ),
        (
            "pruning only",
            RuleSet {
                predicate_model_pruning: true,
                predicate_pushdown: true,
                ..RuleSet::none()
            },
        ),
    ];
    for (label, rules) in configs {
        session.set_rules(rules);
        let got = result_set(&session.query(HOSPITAL_SQL).unwrap().table);
        assert_eq!(got, baseline, "rule set '{label}' changed query results");
    }
}

#[test]
fn forest_and_mlp_models_run_on_tensor_runtime() {
    let (session, data) = hospital_session(800);
    let forest = train::hospital_forest(&data, 5, 5).unwrap();
    let mlp = train::hospital_mlp(&data, vec![8], 10).unwrap();
    session.store_model("rf", forest.clone()).unwrap();
    session.store_model("mlp", mlp.clone()).unwrap();

    for (model, pipeline) in [("rf", &forest), ("mlp", &mlp)] {
        let sql = format!(
            "WITH data AS (\
               SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id)\
             SELECT d.id, p.score FROM PREDICT(MODEL = '{model}', DATA = data AS d) \
             WITH (score FLOAT) AS p"
        );
        let result = session.query(&sql).unwrap();
        assert_eq!(result.table.num_rows(), 800);
        // Cross-check a few predictions against direct pipeline scoring.
        let reference = pipeline.predict(&data.joined_batch()).unwrap();
        let ids = result
            .table
            .column_by_name("d.id")
            .unwrap()
            .i64_values()
            .unwrap();
        let scores = result
            .table
            .column_by_name("p.score")
            .unwrap()
            .f64_values()
            .unwrap();
        for k in [0usize, 100, 799] {
            let id = ids[k] as usize;
            assert!(
                (scores[k] - reference[id]).abs() < 1e-3,
                "{model} row {k}: {} vs {}",
                scores[k],
                reference[id]
            );
        }
    }
}

#[test]
fn gpu_device_produces_identical_predictions() {
    let (session, data) = hospital_session(500);
    let model = train::hospital_forest(&data, 4, 5).unwrap();
    session.store_model("rf", model).unwrap();
    let sql = "SELECT p.s FROM PREDICT(MODEL = 'rf', DATA = \
               (SELECT * FROM patient_info AS pi \
                JOIN blood_tests AS bt ON pi.id = bt.id \
                JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
               WITH (s FLOAT) AS p";
    let cpu = session.query(sql).unwrap();

    let mut config = SessionConfig::for_tests();
    config.device = Device::Gpu;
    let gpu_session = RavenSession::with_config(config);
    data.register(gpu_session.catalog()).unwrap();
    gpu_session
        .store_model("rf", train::hospital_forest(&data, 4, 5).unwrap())
        .unwrap();
    let gpu = gpu_session.query(sql).unwrap();
    assert_eq!(
        cpu.table
            .column_by_name("p.s")
            .unwrap()
            .f64_values()
            .unwrap(),
        gpu.table
            .column_by_name("p.s")
            .unwrap()
            .f64_values()
            .unwrap()
    );
}

#[test]
fn out_of_process_mode_matches_in_process() {
    use raven_ir::ExecutionMode;
    let (session, data) = hospital_session(300);
    let model = train::hospital_tree(&data, 5).unwrap();
    session.store_model("m", model).unwrap();
    let plan = session
        .plan(
            "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = \
             (SELECT * FROM patient_info AS pi \
              JOIN blood_tests AS bt ON pi.id = bt.id \
              JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
             WITH (s FLOAT) AS p",
        )
        .unwrap();
    let in_process = session.execute_plan(&plan).unwrap();

    // Flip the Predict mode to OutOfProcess / Container.
    for mode in [ExecutionMode::OutOfProcess, ExecutionMode::Container] {
        let external_plan = plan.clone().transform_up(&|node| match node {
            Plan::Predict {
                input,
                model,
                output,
                ..
            } => Plan::Predict {
                input,
                model,
                output,
                mode,
            },
            other => other,
        });
        let external = session.execute_plan(&external_plan).unwrap();
        assert_eq!(
            in_process.column_by_name("p.s").unwrap(),
            external.column_by_name("p.s").unwrap(),
            "{mode:?}"
        );
    }
}

#[test]
fn flight_workload_full_stack() {
    let session = RavenSession::with_config(SessionConfig::for_tests());
    let data = flights::generate(3_000, &flights::FlightParams::default());
    data.register(session.catalog()).unwrap();
    let sparse = train::flight_logistic(&data, 0.02, 100).unwrap();
    session.store_model("delay", sparse).unwrap();

    // Plain aggregation (relational path).
    let agg = session
        .query("SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier ORDER BY n DESC")
        .unwrap();
    assert_eq!(agg.table.num_rows(), data.carriers.len());

    // Inference with categorical filter (cross-optimization path).
    let dest = data.airports[1].clone();
    let result = session
        .query(&format!(
            "SELECT f.id, p.prob FROM PREDICT(MODEL = 'delay', DATA = flights AS f) \
             WITH (prob FLOAT) AS p WHERE f.dest = '{dest}'"
        ))
        .unwrap();
    // Count matches a plain filter.
    let plain = session
        .query(&format!("SELECT id FROM flights WHERE dest = '{dest}'"))
        .unwrap();
    assert_eq!(result.table.num_rows(), plain.table.num_rows());
    // Probabilities are valid.
    let probs = result
        .table
        .column_by_name("p.prob")
        .unwrap()
        .f64_values()
        .unwrap();
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
}

#[test]
fn python_script_to_sql_roundtrip() {
    let (session, data) = hospital_session(600);
    let script = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.linear_model import LogisticRegression

pi = pd.read_sql("patient_info")
bt = pd.read_sql("blood_tests")
joined = pi.merge(bt, on="id")
features = joined[["age", "bp"]]
p = Pipeline([("clf", LogisticRegression(penalty="l1", C=2))])
scores = p.predict(features)
"#;
    let labels: Vec<f64> = data
        .length_of_stay
        .iter()
        .map(|&s| (s > 3.0) as i64 as f64)
        .collect();
    session
        .store_model_from_script("risk", script, &labels)
        .unwrap();
    let result = session
        .query(
            "SELECT p.r FROM PREDICT(MODEL = 'risk', DATA = \
             (SELECT * FROM patient_info AS pi JOIN blood_tests AS bt \
              ON pi.id = bt.id) AS d) WITH (r FLOAT) AS p WHERE p.r > 0.5",
        )
        .unwrap();
    assert!(result.table.num_rows() > 0);
    assert!(result.table.num_rows() < 600);
}

#[test]
fn codegen_roundtrip_executes_identically() {
    // Optimized plan → SQL → parse+bind → execute: same results.
    let (session, _) = hospital_session(400);
    let sql = "SELECT pi.id, pi.age FROM patient_info AS pi WHERE pi.age > 50";
    let plan = session.plan(sql).unwrap();
    let (optimized, _) = session.optimize(plan).unwrap();
    let generated = raven_runtime::codegen::to_sql(&optimized);
    let reparsed = session.plan(&generated).unwrap();
    let a = session.execute_plan(&optimized).unwrap();
    let b = session.execute_plan(&reparsed).unwrap();
    assert_eq!(a.num_rows(), b.num_rows());
}

#[test]
fn session_cache_behaviour_across_queries() {
    let (session, data) = hospital_session(300);
    // NN-translated model exercises the tensor session cache.
    let mut config_rules = RuleSet::all();
    config_rules.model_inlining = false; // force tensor path
    config_rules.kernel_placement = false; // …and keep it off the columnar kernel
    let mut session2 = session;
    session2.set_rules(config_rules);
    let model = train::hospital_forest(&data, 3, 4).unwrap();
    session2.store_model("rf", model).unwrap();
    let sql = "SELECT p.s FROM PREDICT(MODEL = 'rf', DATA = \
               (SELECT * FROM patient_info AS pi \
                JOIN blood_tests AS bt ON pi.id = bt.id \
                JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
               WITH (s FLOAT) AS p";
    session2.query(sql).unwrap();
    let (_, misses1) = session2.session_cache_stats();
    session2.query(sql).unwrap();
    let (hits2, misses2) = session2.session_cache_stats();
    assert_eq!(
        misses1, misses2,
        "second query must not rebuild the session"
    );
    assert!(hits2 >= 1);
}
