//! Property-based tests over the system's core invariants (proptest):
//!
//! * tree pruning is *safe*: the pruned tree agrees with the original on
//!   every row satisfying the pruning bounds;
//! * NN translation is *faithful*: the GEMM-translated graph computes the
//!   same predictions as the reference estimator;
//! * pipeline serialization round-trips;
//! * tensor-graph optimization preserves semantics;
//! * relational expression folding preserves evaluation.

use proptest::prelude::*;
use raven_ml::featurize::Transform;
use raven_ml::translate::{translate_estimator, INPUT_NAME};
use raven_ml::tree::{DecisionTree, Interval, TreeParams};
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_tensor::{InferenceSession, SessionOptions, Tensor};
use std::collections::HashMap;

/// Strategy: a small training set over `n_features` features.
fn training_data(n_features: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let rows = 24usize;
    (
        proptest::collection::vec(-10.0..10.0f64, rows * n_features),
        proptest::collection::vec(0.0..5.0f64, rows),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pruned_tree_agrees_on_satisfying_rows(
        (x, y) in training_data(3),
        pin in -10.0..10.0f64,
        probes in proptest::collection::vec(-10.0..10.0f64, 20),
    ) {
        let tree = DecisionTree::fit(&x, 3, &y, &TreeParams {
            max_depth: 4,
            min_samples_leaf: 2,
            allowed_features: None,
        }).unwrap();
        // Pin feature 0 to a constant; prune.
        let bounds = vec![Interval::point(pin), Interval::all(), Interval::all()];
        let pruned = tree.prune(&bounds).unwrap();
        prop_assert!(pruned.n_nodes() <= tree.n_nodes());
        // Agreement on all satisfying rows.
        for pair in probes.chunks(2) {
            if pair.len() < 2 { continue; }
            let row = [pin, pair[0], pair[1]];
            prop_assert_eq!(pruned.predict_row(&row), tree.predict_row(&row));
        }
    }

    #[test]
    fn tree_translation_is_faithful(
        (x, y) in training_data(2),
        probes in proptest::collection::vec(-10.0..10.0f64, 24),
    ) {
        let tree = DecisionTree::fit(&x, 2, &y, &TreeParams {
            max_depth: 4,
            min_samples_leaf: 2,
            allowed_features: None,
        }).unwrap();
        let graph = translate_estimator(&Estimator::Tree(tree.clone())).unwrap();
        let session = InferenceSession::new(graph, SessionOptions::default()).unwrap();
        let rows = probes.len() / 2;
        let reference = tree.predict_batch(&probes[..rows * 2], rows).unwrap();
        let input = Tensor::matrix(
            rows, 2, probes[..rows * 2].iter().map(|&v| v as f32).collect()
        ).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(INPUT_NAME.to_string(), input);
        let (outs, _) = session.run(&inputs).unwrap();
        for (r, &expected) in reference.iter().enumerate() {
            let got = outs[0].data()[r] as f64;
            prop_assert!((got - expected).abs() < 1e-3,
                "row {}: translated {} vs reference {}", r, got, expected);
        }
    }

    #[test]
    fn linear_translation_is_faithful(
        weights in proptest::collection::vec(-3.0..3.0f64, 1..6),
        bias in -2.0..2.0f64,
        probe in proptest::collection::vec(-5.0..5.0f64, 6),
    ) {
        let k = weights.len();
        let model = LinearModel::new(weights, bias, LinearKind::Logistic).unwrap();
        let graph = translate_estimator(&Estimator::Linear(model.clone())).unwrap();
        let session = InferenceSession::new(graph, SessionOptions::default()).unwrap();
        let row: Vec<f64> = probe.into_iter().take(k).chain(std::iter::repeat(0.0)).take(k).collect();
        let reference = model.predict_row(&row);
        let input = Tensor::matrix(1, k, row.iter().map(|&v| v as f32).collect()).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(INPUT_NAME.to_string(), input);
        let (outs, _) = session.run(&inputs).unwrap();
        prop_assert!(((outs[0].data()[0] as f64) - reference).abs() < 1e-3);
    }

    #[test]
    fn pipeline_serialization_roundtrips(
        weights in proptest::collection::vec(-5.0..5.0f64, 3),
        bias in -1.0..1.0f64,
        mean in -10.0..10.0f64,
        std in 0.1..10.0f64,
    ) {
        use raven_ml::featurize::StandardScaler;
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new("b", Transform::Scale(StandardScaler { mean, std })),
                FeatureStep::new("c", Transform::Identity),
            ],
            Estimator::Linear(LinearModel::new(weights, bias, LinearKind::Regression).unwrap()),
        ).unwrap();
        let bytes = raven_ml::serialize::to_bytes(&pipeline);
        let back = raven_ml::serialize::from_bytes(&bytes).unwrap();
        prop_assert_eq!(pipeline, back);
    }

    #[test]
    fn graph_optimization_preserves_outputs(
        w in proptest::collection::vec(-2.0..2.0f32, 4),
        b in proptest::collection::vec(-1.0..1.0f32, 2),
        x in proptest::collection::vec(-3.0..3.0f32, 6),
    ) {
        use raven_tensor::{GraphBuilder, Op};
        let mut builder = GraphBuilder::new();
        let input = builder.input("x");
        let wt = builder.initializer("w", Tensor::matrix(2, 2, w).unwrap());
        let bt = builder.initializer("b", Tensor::vector(b));
        let mm = builder.node(Op::MatMul, &[&input, &wt]);
        let add = builder.node(Op::Add, &[&mm, &bt]);
        let out = builder.node(Op::Sigmoid, &[&add]);
        builder.output(out);
        let graph = builder.build().unwrap();

        let input_tensor = Tensor::matrix(3, 2, x).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), input_tensor);

        let (raw_out, _) = graph.run(&inputs).unwrap();
        let optimized = InferenceSession::new(graph, SessionOptions::default()).unwrap();
        let (opt_out, _) = optimized.run(&inputs).unwrap();
        prop_assert!(raw_out[0].approx_eq(&opt_out[0], 1e-5));
    }

    #[test]
    fn expr_folding_preserves_evaluation(
        a in -100i64..100,
        b in -100i64..100,
        vals in proptest::collection::vec(-100.0..100.0f64, 8),
    ) {
        use raven_data::{Column, DataType, RecordBatch, Schema};
        use raven_ir::{BinOp, Expr};
        use raven_relational::evaluate;
        let schema = Schema::from_pairs(&[("x", DataType::Float64)]).into_shared();
        let batch = RecordBatch::try_new(schema, vec![Column::Float64(vals)]).unwrap();
        // (x + (a + b)) > (a * 1) composed with constants on both sides.
        let expr = Expr::binary(
            BinOp::Gt,
            Expr::binary(
                BinOp::Plus,
                Expr::col("x"),
                Expr::binary(BinOp::Plus, Expr::lit(a), Expr::lit(b)),
            ),
            Expr::binary(BinOp::Multiply, Expr::lit(a), Expr::lit(1i64)),
        );
        let before = evaluate(&expr, &batch).unwrap();
        let after = evaluate(&expr.fold_constants(), &batch).unwrap();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn interval_intersection_is_sound(
        lo1 in -50.0..50.0f64, hi1 in -50.0..50.0f64,
        lo2 in -50.0..50.0f64, hi2 in -50.0..50.0f64,
        probe in -60.0..60.0f64,
    ) {
        let a = Interval { lo: lo1.min(hi1), hi: lo1.max(hi1) };
        let b = Interval { lo: lo2.min(hi2), hi: lo2.max(hi2) };
        let c = a.intersect(b);
        let in_a = probe >= a.lo && probe <= a.hi;
        let in_b = probe >= b.lo && probe <= b.hi;
        let in_c = probe >= c.lo && probe <= c.hi;
        prop_assert_eq!(in_a && in_b, in_c);
    }
}
