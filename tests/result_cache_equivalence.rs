//! Result-cache equivalence suite: a server with the deterministic
//! result cache enabled must be **observationally indistinguishable**
//! from one without it — byte-identical tables for every query, across
//! random constants, repeats, and interleaved table/model mutations.
//!
//! The method is lockstep differential testing: two `ServerState`s built
//! identically (same data, same model, same serial engines so execution
//! itself is deterministic) differ in exactly one knob,
//! `result_cache_capacity`. A randomized workload of queries and
//! mutations is applied to both, and every reply is compared with full
//! `Table` equality (schema, column types, values, row order — not a
//! sorted or quantized projection). Any stale, torn, or misordered
//! cached result fails the run.

use proptest::prelude::*;
use raven_datagen::{hospital, train};
use raven_server::{ServerConfig, ServerState};

const SEED: u64 = 42;

fn build_server(result_cache_capacity: usize) -> ServerState {
    let config = ServerConfig {
        result_cache_capacity,
        ..ServerConfig::for_tests()
    };
    let server = ServerState::new(config);
    let data = hospital::generate(300, SEED);
    data.register(server.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    server.store_model("duration_of_stay", model).unwrap();
    server
}

/// One step of the lockstep workload.
#[derive(Clone, Debug)]
enum Op {
    /// An inference query over the 3-way join, parameterized by (age
    /// threshold, predicted-stay threshold).
    Predict(i64, f64),
    /// A pure relational query parameterized by a bp threshold.
    Relational(f64),
    /// An aggregate whose result shape differs from the others.
    Aggregate,
    /// Swap the model for one trained at a different depth.
    SwapModel(usize),
    /// Replace `blood_tests` with a regenerated (different-seed) table.
    SwapTable(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Narrow value pools on purpose: repeats must actually happen
        // for the cache to be exercised, not just populated.
        (20i64..26, 0..4usize).prop_map(|(age, s)| Op::Predict(age, [2.0, 4.0, 6.0, 8.0][s])),
        (0..3usize).prop_map(|i| Op::Relational([120.0, 140.0, 160.0][i])),
        Just(Op::Aggregate),
        (4..7usize).prop_map(Op::SwapModel),
        (1u64..5).prop_map(Op::SwapTable),
    ]
}

fn sql_for(op: &Op) -> Option<String> {
    match op {
        Op::Predict(age, stay) => Some(format!(
            "WITH data AS (\
               SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id)\
             SELECT d.id, p.stay \
             FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
             WITH (stay FLOAT) AS p \
             WHERE d.age > {age} AND p.stay > {stay}"
        )),
        Op::Relational(bp) => Some(format!("SELECT id, bp FROM blood_tests WHERE bp > {bp}")),
        Op::Aggregate => Some(
            "SELECT pregnant, COUNT(*) AS n, AVG(age) AS mean_age \
             FROM patient_info GROUP BY pregnant"
                .to_string(),
        ),
        Op::SwapModel(_) | Op::SwapTable(_) => None,
    }
}

/// Apply one op to a server; queries return their table for comparison.
fn apply(server: &ServerState, op: &Op) -> Option<raven_data::Table> {
    match op {
        Op::SwapModel(depth) => {
            let data = hospital::generate(300, SEED);
            let model = train::hospital_tree(&data, *depth).unwrap();
            server.store_model("duration_of_stay", model).unwrap();
            None
        }
        Op::SwapTable(seed) => {
            let data = hospital::generate(300, SEED + seed);
            server.replace_table("blood_tests", data.blood_tests.clone());
            None
        }
        query => {
            let sql = sql_for(query).unwrap();
            let result = server.execute(&sql).unwrap();
            Some(result.table.as_ref().clone())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property: for every generated workload —
    /// queries, params, and interleaved table/model mutations — the
    /// cache-on server's replies are byte-identical to the cache-off
    /// server's, including immediately after invalidations.
    #[test]
    fn cached_results_are_byte_identical_to_uncached(
        ops in proptest::collection::vec(op_strategy(), 20..40),
    ) {
        let cached = build_server(256);
        let uncached = build_server(0);
        for (step, op) in ops.iter().enumerate() {
            let a = apply(&cached, op);
            let b = apply(&uncached, op);
            prop_assert_eq!(
                &a, &b,
                "step {} diverged on {:?} (cache-on vs cache-off)", step, op
            );
        }
        // The differential run only proves something if the cached
        // server actually served from the cache.
        let stats = cached.result_cache_stats();
        prop_assert_eq!(uncached.result_cache_stats().executions, 0);
        prop_assert!(
            stats.executions > 0,
            "workload never executed anything: {}", stats
        );
    }
}

/// The hot-path acceptance number: a pure repeat workload (one query
/// shape, few constants, many repetitions) must hit ≥ 90% once warm, and
/// replay the exact table each time.
#[test]
fn repeat_workload_hits_at_least_ninety_percent() {
    let server = build_server(256);
    let constants = [20i64, 30, 40, 50];
    const ROUNDS: usize = 25;
    for round in 0..ROUNDS {
        for age in constants {
            let sql = format!(
                "WITH data AS (\
                   SELECT * FROM patient_info AS pi \
                   JOIN blood_tests AS bt ON pi.id = bt.id \
                   JOIN prenatal_tests AS pt ON bt.id = pt.id)\
                 SELECT d.id, p.stay \
                 FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
                 WITH (stay FLOAT) AS p WHERE d.age > {age}"
            );
            let result = server.execute(&sql).unwrap();
            assert_eq!(
                result.result_cache_hit,
                round > 0,
                "round {round}, age {age}"
            );
        }
    }
    let stats = server.result_cache_stats();
    assert_eq!(stats.executions, constants.len() as u64);
    assert_eq!(stats.hits, (constants.len() * (ROUNDS - 1)) as u64);
    assert!(
        stats.hit_rate() >= 0.9,
        "repeat workload must hit ≥ 90%: {stats}"
    );
    // One preparation too: the template plan cache composes underneath.
    assert_eq!(server.plan_cache_stats().preparations, 1);
}

/// A mutation between two identical queries must be visible immediately:
/// the canonical stale-read scenario, asserted on values rather than
/// only on counters.
#[test]
fn invalidation_is_immediately_visible() {
    let cached = build_server(256);
    let uncached = build_server(0);
    let op = Op::Predict(22, 4.0);
    // Warm the cache and verify agreement.
    assert_eq!(apply(&cached, &op), apply(&uncached, &op));
    assert_eq!(apply(&cached, &op), apply(&uncached, &op));
    // Mutate: the very next repeat must re-execute and still agree.
    let swap = Op::SwapModel(4);
    apply(&cached, &swap);
    apply(&uncached, &swap);
    assert_eq!(apply(&cached, &op), apply(&uncached, &op));
    // Same for a table replacement.
    let swap = Op::SwapTable(3);
    apply(&cached, &swap);
    apply(&uncached, &swap);
    assert_eq!(apply(&cached, &op), apply(&uncached, &op));
    let stats = cached.result_cache_stats();
    assert!(
        stats.invalidations > 0,
        "mutations must invalidate: {stats}"
    );
    assert!(
        stats.hits > 0,
        "repeats between mutations must hit: {stats}"
    );
}
